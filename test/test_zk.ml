(* Tests for the coordination-service substrate: paths, the znode tree's
   ZooKeeper semantics, transactions, watches, and the local service. *)

module Zerror = Zk.Zerror
module Zpath = Zk.Zpath
module Ztree = Zk.Ztree
module Txn = Zk.Txn
module Zk_local = Zk.Zk_local
module Zk_client = Zk.Zk_client

let zerror = Alcotest.testable Zerror.pp Zerror.equal
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Zerror.to_string e)

let expect_err label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" label (Zerror.to_string expected)
  | Error e -> Alcotest.check zerror label expected e

(* {2 Zpath} *)

let test_zpath_validate () =
  check_bool "valid" true (Result.is_ok (Zpath.validate "/a/b"));
  check_bool "root" true (Result.is_ok (Zpath.validate "/"));
  expect_err "trailing slash" Zerror.ZBADARGUMENTS (Zpath.validate "/a/");
  expect_err "relative" Zerror.ZBADARGUMENTS (Zpath.validate "a");
  expect_err "empty component" Zerror.ZBADARGUMENTS (Zpath.validate "/a//b");
  expect_err "dot" Zerror.ZBADARGUMENTS (Zpath.validate "/a/./b");
  expect_err "empty" Zerror.ZBADARGUMENTS (Zpath.validate "")

let test_zpath_parts () =
  check_string "parent" "/a" (Zpath.parent "/a/b");
  check_string "parent top" "/" (Zpath.parent "/a");
  check_string "basename" "b" (Zpath.basename "/a/b");
  check_string "concat" "/a/b" (Zpath.concat "/a" "b");
  check_string "concat root" "/a" (Zpath.concat "/" "a");
  check_int "depth" 3 (Zpath.depth "/a/b/c")

let test_sequential_name () =
  check_string "padded" "lock-0000000007" (Zpath.sequential_name "lock-" 7);
  check_string "large" "n0123456789" (Zpath.sequential_name "n" 123456789)

(* {2 Ztree: creates} *)

let apply_one tree ~zxid op = Ztree.apply tree ~zxid ~time:1. [ op ]

let create_op ?(data = "") ?(ephemeral = 0L) ?(sequential = false) path =
  Txn.Create { path; data; ephemeral_owner = ephemeral; sequential }

let test_create_and_get () =
  let tree = Ztree.create () in
  (match ok_or_fail "create" (apply_one tree ~zxid:1L (create_op ~data:"hello" "/a")) with
  | [ Txn.Created "/a" ] -> ()
  | _ -> Alcotest.fail "unexpected result shape");
  let data, stat = ok_or_fail "get" (Ztree.get tree "/a") in
  check_string "data" "hello" data;
  check_int "version 0" 0 stat.Ztree.version;
  check_bool "czxid" true (stat.Ztree.czxid = 1L)

let test_create_errors () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "create" (apply_one tree ~zxid:1L (create_op "/a")));
  expect_err "duplicate" Zerror.ZNODEEXISTS (apply_one tree ~zxid:2L (create_op "/a"));
  expect_err "missing parent" Zerror.ZNONODE
    (apply_one tree ~zxid:3L (create_op "/x/y"));
  expect_err "recreate root" Zerror.ZNODEEXISTS (apply_one tree ~zxid:4L (create_op "/"));
  expect_err "bad path" Zerror.ZBADARGUMENTS
    (apply_one tree ~zxid:5L (create_op "relative"))

let test_parent_bookkeeping () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk a" (apply_one tree ~zxid:1L (create_op "/a")));
  ignore (ok_or_fail "mk a/b" (apply_one tree ~zxid:2L (create_op "/a/b")));
  ignore (ok_or_fail "mk a/c" (apply_one tree ~zxid:3L (create_op "/a/c")));
  let _, stat = ok_or_fail "get a" (Ztree.get tree "/a") in
  check_int "num_children" 2 stat.Ztree.num_children;
  check_int "cversion" 2 stat.Ztree.cversion;
  check_bool "pzxid updated" true (stat.Ztree.pzxid = 3L);
  Alcotest.(check (list string)) "children sorted" [ "b"; "c" ]
    (ok_or_fail "children" (Ztree.children tree "/a"))

let test_sequential_create () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "parent" (apply_one tree ~zxid:1L (create_op "/q")));
  let created n zxid =
    match ok_or_fail "seq" (apply_one tree ~zxid (create_op ~sequential:true "/q/n-")) with
    | [ Txn.Created path ] ->
      check_string "sequential suffix" (Printf.sprintf "/q/n-%010d" n) path
    | _ -> Alcotest.fail "shape"
  in
  created 0 2L;
  created 1 3L;
  created 2 4L

let test_sequential_counter_not_reused_after_delete () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "parent" (apply_one tree ~zxid:1L (create_op "/q")));
  ignore (ok_or_fail "s0" (apply_one tree ~zxid:2L (create_op ~sequential:true "/q/n-")));
  ignore
    (ok_or_fail "del"
       (apply_one tree ~zxid:3L (Txn.Delete { path = "/q/n-0000000000"; expected_version = -1 })));
  (match ok_or_fail "s1" (apply_one tree ~zxid:4L (create_op ~sequential:true "/q/n-")) with
  | [ Txn.Created path ] -> check_string "counter advances" "/q/n-0000000001" path
  | _ -> Alcotest.fail "shape")

(* {2 Ztree: delete / set / check} *)

let test_delete () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op "/a")));
  ignore (ok_or_fail "mk child" (apply_one tree ~zxid:2L (create_op "/a/b")));
  expect_err "not empty" Zerror.ZNOTEMPTY
    (apply_one tree ~zxid:3L (Txn.Delete { path = "/a"; expected_version = -1 }));
  ignore
    (ok_or_fail "del child"
       (apply_one tree ~zxid:4L (Txn.Delete { path = "/a/b"; expected_version = -1 })));
  ignore
    (ok_or_fail "del"
       (apply_one tree ~zxid:5L (Txn.Delete { path = "/a"; expected_version = -1 })));
  expect_err "gone" Zerror.ZNONODE (Ztree.get tree "/a");
  expect_err "delete root" Zerror.ZBADARGUMENTS
    (apply_one tree ~zxid:6L (Txn.Delete { path = "/"; expected_version = -1 }));
  expect_err "delete missing" Zerror.ZNONODE
    (apply_one tree ~zxid:7L (Txn.Delete { path = "/zz"; expected_version = -1 }))

let test_version_checks () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op ~data:"v0" "/a")));
  ignore
    (ok_or_fail "set ok"
       (apply_one tree ~zxid:2L
          (Txn.Set_data { path = "/a"; data = "v1"; expected_version = 0 })));
  let data, stat = ok_or_fail "get" (Ztree.get tree "/a") in
  check_string "updated" "v1" data;
  check_int "version bumped" 1 stat.Ztree.version;
  expect_err "stale set" Zerror.ZBADVERSION
    (apply_one tree ~zxid:3L
       (Txn.Set_data { path = "/a"; data = "v2"; expected_version = 0 }));
  expect_err "stale delete" Zerror.ZBADVERSION
    (apply_one tree ~zxid:4L (Txn.Delete { path = "/a"; expected_version = 0 }));
  ignore
    (ok_or_fail "any-version set"
       (apply_one tree ~zxid:5L
          (Txn.Set_data { path = "/a"; data = "v2"; expected_version = -1 })));
  ignore
    (ok_or_fail "check ok"
       (apply_one tree ~zxid:6L (Txn.Check { path = "/a"; expected_version = 2 })));
  expect_err "check stale" Zerror.ZBADVERSION
    (apply_one tree ~zxid:7L (Txn.Check { path = "/a"; expected_version = 0 }))

let test_mzxid_tracks_set () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:5L (create_op "/a")));
  ignore
    (ok_or_fail "set"
       (apply_one tree ~zxid:9L (Txn.Set_data { path = "/a"; data = "x"; expected_version = -1 })));
  let _, stat = ok_or_fail "get" (Ztree.get tree "/a") in
  check_bool "czxid stays" true (stat.Ztree.czxid = 5L);
  check_bool "mzxid moves" true (stat.Ztree.mzxid = 9L)

(* {2 Ztree: ephemerals} *)

let test_ephemeral_no_children () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk eph" (apply_one tree ~zxid:1L (create_op ~ephemeral:7L "/e")));
  expect_err "child of ephemeral" Zerror.ZNOCHILDRENFOREPHEMERALS
    (apply_one tree ~zxid:2L (create_op "/e/c"));
  let _, stat = ok_or_fail "get" (Ztree.get tree "/e") in
  check_bool "owner recorded" true (stat.Ztree.ephemeral_owner = 7L)

let test_ephemerals_of_owner () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk dir" (apply_one tree ~zxid:1L (create_op "/d")));
  ignore (ok_or_fail "e1" (apply_one tree ~zxid:2L (create_op ~ephemeral:7L "/d/e1")));
  ignore (ok_or_fail "e2" (apply_one tree ~zxid:3L (create_op ~ephemeral:7L "/e2")));
  ignore (ok_or_fail "other" (apply_one tree ~zxid:4L (create_op ~ephemeral:9L "/x")));
  let mine = Ztree.ephemerals_of tree ~owner:7L in
  check_int "two ephemerals" 2 (List.length mine);
  check_bool "deepest first" true (List.hd mine = "/d/e1");
  ignore
    (ok_or_fail "delete one"
       (apply_one tree ~zxid:5L (Txn.Delete { path = "/e2"; expected_version = -1 })));
  check_int "tracking updated" 1 (List.length (Ztree.ephemerals_of tree ~owner:7L))

(* {2 Ztree: multi transactions} *)

let test_multi_atomic_success () =
  let tree = Ztree.create () in
  let txn = [ create_op "/a"; create_op "/a/b"; create_op ~data:"x" "/a/b/c" ] in
  let results = ok_or_fail "multi" (Ztree.apply tree ~zxid:1L ~time:0. txn) in
  check_int "three results" 3 (List.length results);
  check_bool "all created" true (Result.is_ok (Ztree.get tree "/a/b/c"))

let test_multi_rollback_on_failure () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "pre" (apply_one tree ~zxid:1L (create_op ~data:"keep" "/pre")));
  let before_bytes = Ztree.resident_bytes tree in
  let txn =
    [ create_op "/a";
      Txn.Set_data { path = "/pre"; data = "clobbered"; expected_version = -1 };
      create_op "/missing-parent/child" (* fails *) ]
  in
  expect_err "multi fails" Zerror.ZNONODE (Ztree.apply tree ~zxid:2L ~time:0. txn);
  expect_err "first create rolled back" Zerror.ZNONODE (Ztree.get tree "/a");
  let data, stat = ok_or_fail "pre intact" (Ztree.get tree "/pre") in
  check_string "set rolled back" "keep" data;
  check_int "version restored" 0 stat.Ztree.version;
  check_int "byte accounting restored" before_bytes (Ztree.resident_bytes tree);
  check_bool "zxid not consumed by failed txn" true (Ztree.last_zxid tree = 1L)

let test_multi_rename_pattern () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op ~data:"fid123" "/old")));
  let txn =
    [ Txn.Check { path = "/old"; expected_version = 0 };
      create_op ~data:"fid123" "/new";
      Txn.Delete { path = "/old"; expected_version = -1 } ]
  in
  ignore (ok_or_fail "rename txn" (Ztree.apply tree ~zxid:2L ~time:0. txn));
  expect_err "old gone" Zerror.ZNONODE (Ztree.get tree "/old");
  let data, _ = ok_or_fail "new exists" (Ztree.get tree "/new") in
  check_string "payload moved" "fid123" data

let test_zxid_monotonicity_enforced () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:5L (create_op "/a")));
  Alcotest.check_raises "reused zxid"
    (Invalid_argument "Ztree.apply: zxid 5 not beyond 5") (fun () ->
      ignore (apply_one tree ~zxid:5L (create_op "/b")))

(* {2 Ztree: watches} *)

let test_data_watch_fires_once () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op "/a")));
  let fired = ref [] in
  Ztree.watch_data tree "/a" (fun ev -> fired := ev :: !fired);
  ignore
    (ok_or_fail "set1"
       (apply_one tree ~zxid:2L (Txn.Set_data { path = "/a"; data = "x"; expected_version = -1 })));
  ignore
    (ok_or_fail "set2"
       (apply_one tree ~zxid:3L (Txn.Set_data { path = "/a"; data = "y"; expected_version = -1 })));
  check_int "fired exactly once" 1 (List.length !fired);
  (match !fired with
  | [ { Ztree.kind = Ztree.Node_data_changed; path = "/a" } ] -> ()
  | _ -> Alcotest.fail "wrong event")

let test_exists_watch_fires_on_create () =
  let tree = Ztree.create () in
  let fired = ref [] in
  Ztree.watch_data tree "/future" (fun ev -> fired := ev :: !fired);
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op "/future")));
  (match !fired with
  | [ { Ztree.kind = Ztree.Node_created; path = "/future" } ] -> ()
  | _ -> Alcotest.fail "expected creation event")

let test_child_watch () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op "/d")));
  let fired = ref [] in
  Ztree.watch_children tree "/d" (fun ev -> fired := ev :: !fired);
  ignore (ok_or_fail "mk child" (apply_one tree ~zxid:2L (create_op "/d/c")));
  (match !fired with
  | [ { Ztree.kind = Ztree.Node_children_changed; path = "/d" } ] -> ()
  | _ -> Alcotest.fail "expected children-changed");
  (* re-arm and check delete fires too *)
  Ztree.watch_children tree "/d" (fun ev -> fired := ev :: !fired);
  ignore
    (ok_or_fail "del child"
       (apply_one tree ~zxid:3L (Txn.Delete { path = "/d/c"; expected_version = -1 })));
  check_int "two events total" 2 (List.length !fired)

let test_delete_fires_data_watch () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op "/a")));
  let fired = ref [] in
  Ztree.watch_data tree "/a" (fun ev -> fired := ev :: !fired);
  ignore
    (ok_or_fail "del"
       (apply_one tree ~zxid:2L (Txn.Delete { path = "/a"; expected_version = -1 })));
  (match !fired with
  | [ { Ztree.kind = Ztree.Node_deleted; path = "/a" } ] -> ()
  | _ -> Alcotest.fail "expected deletion event")

let test_no_watch_on_failed_txn () =
  let tree = Ztree.create () in
  ignore (ok_or_fail "mk" (apply_one tree ~zxid:1L (create_op "/a")));
  let fired = ref 0 in
  Ztree.watch_data tree "/a" (fun _ -> incr fired);
  expect_err "failing multi" Zerror.ZNONODE
    (Ztree.apply tree ~zxid:2L ~time:0.
       [ Txn.Set_data { path = "/a"; data = "x"; expected_version = -1 };
         create_op "/nope/child" ]);
  check_int "watch survived the aborted txn" 0 !fired;
  (* the watch is still armed and fires on the next real change *)
  ignore
    (ok_or_fail "set"
       (apply_one tree ~zxid:3L (Txn.Set_data { path = "/a"; data = "y"; expected_version = -1 })));
  check_int "fires later" 1 !fired

(* {2 Ztree: memory accounting and fingerprints} *)

let test_bytes_scale_with_nodes () =
  let tree = Ztree.create () in
  let base = Ztree.resident_bytes tree in
  for i = 0 to 99 do
    ignore
      (ok_or_fail "mk"
         (apply_one tree
            ~zxid:(Int64.of_int (i + 1))
            (create_op ~data:"0123456789" (Printf.sprintf "/n%03d" i))))
  done;
  let per_node = (Ztree.resident_bytes tree - base) / 100 in
  check_bool "per-node cost in a plausible band" true (per_node > 150 && per_node < 400);
  check_int "node count" 101 (Ztree.node_count tree)

let test_equal_state_and_fingerprint () =
  let build () =
    let tree = Ztree.create () in
    ignore (ok_or_fail "a" (apply_one tree ~zxid:1L (create_op ~data:"1" "/a")));
    ignore (ok_or_fail "b" (apply_one tree ~zxid:2L (create_op ~data:"2" "/a/b")));
    tree
  in
  let t1 = build () and t2 = build () in
  check_bool "equal states" true (Ztree.equal_state t1 t2);
  check_int "same fingerprint" (Ztree.fingerprint t1) (Ztree.fingerprint t2);
  ignore
    (ok_or_fail "diverge"
       (apply_one t2 ~zxid:3L (Txn.Set_data { path = "/a"; data = "9"; expected_version = -1 })));
  check_bool "detects divergence" false (Ztree.equal_state t1 t2)

(* {2 Property: random valid op sequences keep children/index consistent} *)

let prop_tree_children_index_agree =
  let gen_ops =
    QCheck2.Gen.(
      list_size (int_range 1 60)
        (oneof
           [ map (fun (a, b) -> `Create ("/" ^ a ^ (if b then "/x" else "")))
               (pair (oneofl [ "p"; "q"; "r" ]) bool);
             map (fun a -> `Delete ("/" ^ a)) (oneofl [ "p"; "q"; "r"; "p/x"; "q/x" ]) ]))
  in
  QCheck2.Test.make ~name:"every child entry points at a live node (and back)"
    ~count:300 gen_ops (fun ops ->
      let tree = Ztree.create () in
      let zxid = ref 0L in
      List.iter
        (fun op ->
          zxid := Int64.add !zxid 1L;
          ignore
            (match op with
            | `Create path -> Ztree.apply tree ~zxid:!zxid ~time:0. [ create_op path ]
            | `Delete path ->
              Ztree.apply tree ~zxid:!zxid ~time:0.
                [ Txn.Delete { path; expected_version = -1 } ]))
        ops;
      (* every node reachable from the root exists in the index, and
         every child's parent linkage is consistent *)
      let rec walk path acc =
        match Ztree.children tree path with
        | Error _ -> acc
        | Ok names ->
          List.fold_left
            (fun acc name ->
              let child = Zpath.concat path name in
              if Ztree.exists tree child = None then false
              else walk child acc)
            acc names
      in
      walk "/" true)

(* {2 Zk_local} *)

let test_local_session_api () =
  let svc = Zk_local.create () in
  let s = Zk_local.session svc in
  check_string "create returns path" "/a" (ok_or_fail "create" (s.Zk_client.create "/a" ~data:"d"));
  let data, _ = ok_or_fail "get" (s.Zk_client.get "/a") in
  check_string "data" "d" data;
  ok_or_fail "set" (s.Zk_client.set "/a" ~data:"d2");
  check_bool "exists" true (s.Zk_client.exists "/a" <> Ok None);
  Alcotest.(check (list string)) "children" []
    (ok_or_fail "children" (s.Zk_client.children "/a"));
  ok_or_fail "delete" (s.Zk_client.delete "/a");
  check_bool "gone" true (s.Zk_client.exists "/a" = Ok None)

let test_local_sessions_share_namespace () =
  let svc = Zk_local.create () in
  let s1 = Zk_local.session svc and s2 = Zk_local.session svc in
  ignore (ok_or_fail "s1 create" (s1.Zk_client.create "/shared" ~data:"x"));
  let data, _ = ok_or_fail "s2 sees it" (s2.Zk_client.get "/shared") in
  check_string "shared data" "x" data;
  check_bool "distinct session ids" true
    (s1.Zk_client.session_id <> s2.Zk_client.session_id)

let test_local_ephemeral_cleanup_on_close () =
  let svc = Zk_local.create () in
  let s1 = Zk_local.session svc and s2 = Zk_local.session svc in
  ignore (ok_or_fail "eph" (s1.Zk_client.create ~ephemeral:true "/tmp" ~data:""));
  ignore (ok_or_fail "persistent" (s1.Zk_client.create "/keep" ~data:""));
  s1.Zk_client.close ();
  check_bool "ephemeral removed" true (s2.Zk_client.exists "/tmp" = Ok None);
  check_bool "persistent kept" true (s2.Zk_client.exists "/keep" <> Ok None)

let test_local_sequential () =
  let svc = Zk_local.create () in
  let s = Zk_local.session svc in
  ignore (ok_or_fail "parent" (s.Zk_client.create "/q" ~data:""));
  let p0 = ok_or_fail "s0" (s.Zk_client.create ~sequential:true "/q/n-" ~data:"") in
  let p1 = ok_or_fail "s1" (s.Zk_client.create ~sequential:true "/q/n-" ~data:"") in
  check_bool "ordered names" true (p0 < p1)

let test_local_multi () =
  let svc = Zk_local.create () in
  let s = Zk_local.session svc in
  let txn = [ Zk_client.create_op "/m" ~data:""; Zk_client.create_op "/m/c" ~data:"" ] in
  ignore (ok_or_fail "multi" (s.Zk_client.multi txn));
  expect_err "atomic failure"
    Zerror.ZNONODE
    (s.Zk_client.multi
       [ Zk_client.create_op "/m2" ~data:""; Zk_client.create_op "/zz/c" ~data:"" ]);
  check_bool "rolled back" true (s.Zk_client.exists "/m2" = Ok None)

(* {2 Bulk readdir (children_with_data)} *)

(* the pre-bulk client behaviour: list names, then one get per child *)
let per_child_get_loop (s : Zk_client.handle) path =
  List.map
    (fun name ->
      let data, stat = ok_or_fail ("get " ^ name) (s.Zk_client.get (Zpath.concat path name)) in
      (name, data, stat))
    (ok_or_fail "children" (s.Zk_client.children path))

let populate (s : Zk_client.handle) =
  ignore (ok_or_fail "dir" (s.Zk_client.create "/dir" ~data:"root"));
  List.iter
    (fun (name, data) ->
      ignore (ok_or_fail name (s.Zk_client.create ("/dir/" ^ name) ~data)))
    [ ("zz", "last"); ("aa", "first"); ("mid", ""); ("sub", "dir") ];
  ignore (ok_or_fail "grandchild" (s.Zk_client.create "/dir/sub/inner" ~data:"x"));
  ignore (ok_or_fail "bump version" (s.Zk_client.set "/dir/mid" ~data:"v1"))

let test_bulk_readdir_agrees_with_get_loop_local () =
  let svc = Zk_local.create () in
  let s = Zk_local.session svc in
  populate s;
  let bulk = ok_or_fail "bulk" (s.Zk_client.children_with_data "/dir") in
  check_bool "entry-for-entry agreement with the per-child get loop" true
    (bulk = per_child_get_loop s "/dir");
  check_int "all four children listed" 4 (List.length bulk);
  check_bool "sorted by name" true
    (List.map (fun (n, _, _) -> n) bulk = [ "aa"; "mid"; "sub"; "zz" ]);
  expect_err "missing parent" Zerror.ZNONODE
    (s.Zk_client.children_with_data "/nope");
  Alcotest.(check (list string)) "leaf node lists empty" []
    (List.map (fun (n, _, _) -> n)
       (ok_or_fail "leaf" (s.Zk_client.children_with_data "/dir/aa")))

let test_bulk_readdir_agrees_with_get_loop_ensemble () =
  let engine = Simkit.Engine.create () in
  let ensemble = Zk.Ensemble.start engine (Zk.Ensemble.default_config ~servers:3) in
  Simkit.Process.spawn engine (fun () ->
      let s = Zk.Ensemble.session ensemble () in
      populate s;
      let reads_before =
        List.fold_left (fun acc id -> acc + Zk.Ensemble.reads_served ensemble id) 0
          [ 0; 1; 2 ]
      in
      let bulk = ok_or_fail "bulk" (s.Zk_client.children_with_data "/dir") in
      let reads_after =
        List.fold_left (fun acc id -> acc + Zk.Ensemble.reads_served ensemble id) 0
          [ 0; 1; 2 ]
      in
      check_int "whole listing costs one coordination read" 1
        (reads_after - reads_before);
      check_bool "entry-for-entry agreement through the ensemble" true
        (bulk = per_child_get_loop s "/dir"));
  Simkit.Engine.run engine

let test_bulk_readdir_watch_variant () =
  let svc = Zk_local.create () in
  let s = Zk_local.session svc in
  populate s;
  let events = ref [] in
  let bulk =
    ok_or_fail "bulk+watch"
      (s.Zk_client.children_with_data_watch "/dir" (fun ev ->
           events := (ev.Ztree.kind, ev.Ztree.path) :: !events))
  in
  check_int "same entries as the plain bulk read" 4 (List.length bulk);
  (* data watch on each listed child: set fires with the child's path *)
  ignore (ok_or_fail "set child" (s.Zk_client.set "/dir/aa" ~data:"new"));
  check_bool "child data watch fired" true
    (List.mem (Ztree.Node_data_changed, "/dir/aa") !events);
  (* child watch on the parent: create fires children-changed *)
  ignore (ok_or_fail "new child" (s.Zk_client.create "/dir/extra" ~data:""));
  check_bool "parent child watch fired" true
    (List.mem (Ztree.Node_children_changed, "/dir") !events)

(* {2 Snapshots} *)

let build_rich_tree () =
  let tree = Ztree.create () in
  let zxid = ref 0L in
  let next () = zxid := Int64.add !zxid 1L; !zxid in
  ignore (ok_or_fail "a" (Ztree.apply tree ~zxid:(next ()) ~time:1.5 [ create_op ~data:"alpha" "/a" ]));
  ignore (ok_or_fail "a/b" (Ztree.apply tree ~zxid:(next ()) ~time:2.5 [ create_op ~data:"beta\nwith|newline: stuff" "/a/b" ]));
  ignore (ok_or_fail "eph" (Ztree.apply tree ~zxid:(next ()) ~time:3. [ create_op ~ephemeral:42L "/e" ]));
  ignore (ok_or_fail "seq" (Ztree.apply tree ~zxid:(next ()) ~time:4. [ create_op ~sequential:true "/a/s-" ]));
  ignore
    (ok_or_fail "set"
       (Ztree.apply tree ~zxid:(next ()) ~time:5.
          [ Txn.Set_data { path = "/a"; data = "alpha2"; expected_version = 0 } ]));
  (tree, next)

let test_snapshot_roundtrip () =
  let tree, _ = build_rich_tree () in
  match Ztree.deserialize (Ztree.serialize tree) with
  | Error msg -> Alcotest.fail msg
  | Ok restored ->
    check_bool "equal state" true (Ztree.equal_state tree restored);
    check_int "same fingerprint" (Ztree.fingerprint tree) (Ztree.fingerprint restored);
    check_int "same node count" (Ztree.node_count tree) (Ztree.node_count restored);
    check_bool "same last zxid" true (Ztree.last_zxid tree = Ztree.last_zxid restored);
    check_int "same byte accounting" (Ztree.resident_bytes tree)
      (Ztree.resident_bytes restored);
    (* stats survive *)
    let _, stat = ok_or_fail "get" (Ztree.get restored "/a") in
    check_int "version" 1 stat.Ztree.version;
    check_int "cversion" 2 stat.Ztree.cversion;
    (* ephemerals tracking survives *)
    check_int "ephemerals rebuilt" 1 (List.length (Ztree.ephemerals_of restored ~owner:42L))

let test_snapshot_restored_tree_keeps_working () =
  let tree, _ = build_rich_tree () in
  let restored = Result.get_ok (Ztree.deserialize (Ztree.serialize tree)) in
  let zxid = Int64.add (Ztree.last_zxid restored) 1L in
  (* sequential counter continues where it left off *)
  (* /a's child-sequence counter was 2 (children b and s-0000000001) *)
  (match ok_or_fail "seq" (apply_one restored ~zxid (create_op ~sequential:true "/a/s-")) with
  | [ Txn.Created path ] -> check_string "counter continued" "/a/s-0000000002" path
  | _ -> Alcotest.fail "shape");
  (* mutation on the restored tree does not affect the original *)
  check_bool "original untouched" false (Ztree.equal_state tree restored)

let test_snapshot_rejects_garbage () =
  List.iter
    (fun s ->
      match Ztree.deserialize s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    [ ""; "nonsense"; "ZTREEv1 abc\n1\n"; "ZTREEv1 5\n"; "ZTREEv1 5\n2\n1:/0: 0 0 0 1 1 1 0 0 0\n" ]

let prop_snapshot_roundtrip =
  let gen_ops =
    QCheck2.Gen.(
      list_size (int_range 1 50)
        (oneof
           [ map (fun (a, sub) -> `Create ("/" ^ a ^ (if sub then "/x" else "")))
               (pair (oneofl [ "p"; "q"; "r" ]) bool);
             map (fun a -> `Delete ("/" ^ a)) (oneofl [ "p"; "q"; "p/x" ]);
             map (fun (a, d) -> `Set ("/" ^ a, d))
               (pair (oneofl [ "p"; "q"; "r" ]) (string_size (int_range 0 12))) ]))
  in
  QCheck2.Test.make ~name:"snapshot roundtrip preserves state for random trees"
    ~count:200 gen_ops (fun ops ->
      let tree = Ztree.create () in
      let zxid = ref 0L in
      List.iter
        (fun op ->
          zxid := Int64.add !zxid 1L;
          ignore
            (match op with
            | `Create path -> Ztree.apply tree ~zxid:!zxid ~time:0. [ create_op path ]
            | `Delete path ->
              Ztree.apply tree ~zxid:!zxid ~time:0.
                [ Txn.Delete { path; expected_version = -1 } ]
            | `Set (path, data) ->
              Ztree.apply tree ~zxid:!zxid ~time:0.
                [ Txn.Set_data { path; data; expected_version = -1 } ]))
        ops;
      match Ztree.deserialize (Ztree.serialize tree) with
      | Ok restored ->
        Ztree.equal_state tree restored
        && Ztree.fingerprint tree = Ztree.fingerprint restored
        && Ztree.resident_bytes tree = Ztree.resident_bytes restored
      | Error _ -> false)

(* {2 Memory model} *)

let test_memory_model_slope () =
  let svc = Zk_local.create () in
  let s = Zk_local.session svc in
  ignore (ok_or_fail "root" (s.Zk_client.create "/m" ~data:""));
  let base = Zk_local.server_resident_bytes svc in
  check_bool "baseline includes JVM" true (base >= Zk.Memory_model.jvm_baseline_bytes);
  let n = 10_000 in
  for i = 0 to n - 1 do
    ignore
      (ok_or_fail "mk"
         (s.Zk_client.create (Printf.sprintf "/m/d%08d" i) ~data:(String.make 35 'm')))
  done;
  let per_node =
    float_of_int (Zk_local.server_resident_bytes svc - base) /. float_of_int n
  in
  (* the paper's figure: ~417 MB per million znodes (§V-E) *)
  check_bool
    (Printf.sprintf "per-znode cost near 417 B (got %.0f)" per_node)
    true
    (per_node > 330. && per_node < 510.)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "zk"
    [ ( "zpath",
        [ Alcotest.test_case "validate" `Quick test_zpath_validate;
          Alcotest.test_case "parts" `Quick test_zpath_parts;
          Alcotest.test_case "sequential name" `Quick test_sequential_name ] );
      ( "ztree-create",
        [ Alcotest.test_case "create and get" `Quick test_create_and_get;
          Alcotest.test_case "create errors" `Quick test_create_errors;
          Alcotest.test_case "parent bookkeeping" `Quick test_parent_bookkeeping;
          Alcotest.test_case "sequential create" `Quick test_sequential_create;
          Alcotest.test_case "sequential counter persists" `Quick
            test_sequential_counter_not_reused_after_delete ] );
      ( "ztree-mutate",
        [ Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "version checks" `Quick test_version_checks;
          Alcotest.test_case "mzxid tracking" `Quick test_mzxid_tracks_set ] );
      ( "ztree-ephemeral",
        [ Alcotest.test_case "no children" `Quick test_ephemeral_no_children;
          Alcotest.test_case "per-owner tracking" `Quick test_ephemerals_of_owner ] );
      ( "ztree-multi",
        [ Alcotest.test_case "atomic success" `Quick test_multi_atomic_success;
          Alcotest.test_case "rollback on failure" `Quick test_multi_rollback_on_failure;
          Alcotest.test_case "rename pattern" `Quick test_multi_rename_pattern;
          Alcotest.test_case "zxid monotonicity" `Quick test_zxid_monotonicity_enforced ] );
      ( "ztree-watches",
        [ Alcotest.test_case "data watch fires once" `Quick test_data_watch_fires_once;
          Alcotest.test_case "exists watch on create" `Quick
            test_exists_watch_fires_on_create;
          Alcotest.test_case "child watch" `Quick test_child_watch;
          Alcotest.test_case "delete fires data watch" `Quick
            test_delete_fires_data_watch;
          Alcotest.test_case "no watch on failed txn" `Quick test_no_watch_on_failed_txn ] );
      ( "ztree-invariants",
        [ Alcotest.test_case "bytes scale with nodes" `Quick test_bytes_scale_with_nodes;
          Alcotest.test_case "equal_state/fingerprint" `Quick
            test_equal_state_and_fingerprint;
          qc prop_tree_children_index_agree ] );
      ( "zk-local",
        [ Alcotest.test_case "session api" `Quick test_local_session_api;
          Alcotest.test_case "shared namespace" `Quick test_local_sessions_share_namespace;
          Alcotest.test_case "ephemeral cleanup" `Quick
            test_local_ephemeral_cleanup_on_close;
          Alcotest.test_case "sequential" `Quick test_local_sequential;
          Alcotest.test_case "multi" `Quick test_local_multi ] );
      ( "bulk-readdir",
        [ Alcotest.test_case "agrees with get loop (local)" `Quick
            test_bulk_readdir_agrees_with_get_loop_local;
          Alcotest.test_case "agrees with get loop (ensemble), 1 read" `Quick
            test_bulk_readdir_agrees_with_get_loop_ensemble;
          Alcotest.test_case "watch variant arms child + parent watches" `Quick
            test_bulk_readdir_watch_variant ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "restored tree keeps working" `Quick
            test_snapshot_restored_tree_keeps_working;
          Alcotest.test_case "rejects garbage" `Quick test_snapshot_rejects_garbage;
          qc prop_snapshot_roundtrip ] );
      ( "memory-model",
        [ Alcotest.test_case "per-znode slope" `Quick test_memory_model_slope ] ) ]
