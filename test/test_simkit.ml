(* Unit and property tests for the discrete-event simulation substrate. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Resource = Simkit.Resource
module Mailbox = Simkit.Mailbox
module Gate = Simkit.Gate
module Rng = Simkit.Rng
module Stat = Simkit.Stat

let check_float = Alcotest.(check (float 1e-9))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* {2 Engine} *)

let test_initial_state () =
  let e = Engine.create () in
  check_float "time starts at 0" 0. (Engine.now e);
  check_int "no pending events" 0 (Engine.pending_events e);
  check_int "no executed events" 0 (Engine.executed_events e)

let test_schedule_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:3. (fun () -> log := 3 :: !log);
  Engine.schedule e ~delay:1. (fun () -> log := 1 :: !log);
  Engine.schedule e ~delay:2. (fun () -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "timestamp order" [ 1; 2; 3 ] (List.rev !log)

let test_fifo_on_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule e ~delay:1. (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO among equal timestamps"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ] (List.rev !log)

let test_clock_advances () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:0.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.schedule e ~delay:1.5 (fun () -> seen := Engine.now e :: !seen);
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "clock at event times" [ 0.5; 1.5 ]
    (List.rev !seen)

let test_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0. in
  Engine.schedule e ~delay:1. (fun () ->
      Engine.schedule e ~delay:1. (fun () -> fired := Engine.now e));
  Engine.run e;
  check_float "relative to current event" 2. !fired

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 5 do
    Engine.schedule e ~delay:1. (fun () -> incr count)
  done;
  Engine.schedule e ~delay:10. (fun () -> incr count);
  Engine.run ~until:5. e;
  check_int "later event not run" 5 !count;
  check_float "clock clamped to horizon" 5. (Engine.now e);
  check_int "event still pending" 1 (Engine.pending_events e)

let test_stop () =
  let e = Engine.create () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Engine.schedule e ~delay:1. (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run e;
  check_int "stopped after third event" 3 !count;
  Engine.run e;
  check_int "run resumes" 10 !count

let test_negative_delay_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: bad delay -1") (fun () ->
      Engine.schedule e ~delay:(-1.) ignore)

let test_past_schedule_rejected () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5. ignore;
  Engine.run e;
  Alcotest.check_raises "absolute time in the past"
    (Invalid_argument "Engine.schedule_at: time 1 is before now 5") (fun () ->
      Engine.schedule_at e ~time:1. ignore)

let test_executed_counter () =
  let e = Engine.create () in
  for _ = 1 to 7 do
    Engine.schedule e ~delay:1. ignore
  done;
  Engine.run e;
  check_int "executed count" 7 (Engine.executed_events e)

let prop_heap_order =
  QCheck2.Test.make ~name:"events always pop in nondecreasing time order" ~count:200
    QCheck2.Gen.(list_size (int_range 1 200) (float_range 0. 100.))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d -> Engine.schedule e ~delay:d (fun () -> times := Engine.now e :: !times))
        delays;
      Engine.run e;
      let ordered = List.rev !times in
      List.length ordered = List.length delays
      && List.for_all2 ( <= ) ordered (List.sort compare delays))

(* [run ~until] + [stop] interplay: a horizon exit clamps the clock to
   the horizon, a [stop] exit leaves it at the last executed event, and
   a later [run] resumes cleanly from either. *)
let test_stop_under_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Engine.schedule_at e ~time:(float_of_int i) (fun () ->
        incr count;
        if !count = 3 then Engine.stop e)
  done;
  Engine.run ~until:7.5 e;
  check_int "stopped after third event" 3 !count;
  check_float "stop leaves clock at last event, not horizon" 3. (Engine.now e);
  Engine.run ~until:7.5 e;
  check_int "resume runs up to horizon" 7 !count;
  check_float "horizon exit clamps clock" 7.5 (Engine.now e);
  Engine.run e;
  check_int "all events eventually run" 10 !count;
  check_float "clock at final event" 10. (Engine.now e)

let test_run_until_empty_queue () =
  let e = Engine.create () in
  Engine.schedule e ~delay:1. ignore;
  Engine.run ~until:5. e;
  check_float "idle run still advances to horizon" 5. (Engine.now e);
  Engine.run ~until:3. e;
  check_float "earlier horizon does not rewind" 5. (Engine.now e)

(* Dispatch-order oracle: a reference engine whose pending queue is an
   explicit (time, seq)-sorted list — insertion keeps ties in schedule
   order, exactly the binary-heap contract the calendar queue + FIFO
   lane must preserve. Both engines execute the same two-level scenario
   (roots at absolute times, children at relative offsets, many of them
   exactly 0 to land in the zero-delay lane) and must produce identical
   (time, tag) traces. *)
module Ref_engine = struct
  type ev = { time : float; seq : int; fire : unit -> unit }

  type t = {
    mutable now : float;
    mutable seq : int;
    mutable pending : ev list;  (* sorted by (time, seq) *)
  }

  let create () = { now = 0.; seq = 0; pending = [] }

  let schedule_at t ~time fire =
    let ev = { time; seq = t.seq; fire } in
    t.seq <- t.seq + 1;
    let rec insert = function
      | [] -> [ ev ]
      | e :: rest ->
        if e.time > ev.time then ev :: e :: rest else e :: insert rest
    in
    t.pending <- insert t.pending

  let rec run t =
    match t.pending with
    | [] -> ()
    | ev :: rest ->
      t.pending <- rest;
      t.now <- ev.time;
      ev.fire ();
      run t
end

let prop_matches_reference_heap =
  let gen_offset =
    QCheck2.Gen.(
      oneof [ return 0.; float_range 0. 1.; return 0.; float_range 0. 0.01 ])
  in
  let gen_scenario =
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (pair (float_range 0. 10.) (list_size (int_range 0 3) gen_offset)))
  in
  QCheck2.Test.make
    ~name:"dispatch order identical to reference (time, seq) heap" ~count:200
    gen_scenario
    (fun scenario ->
      let trace schedule_at now =
        let log = ref [] in
        List.iteri
          (fun i (t0, kids) ->
            schedule_at t0 (fun () ->
                log := (now (), (i, -1)) :: !log;
                List.iteri
                  (fun j off ->
                    schedule_at (now () +. off) (fun () ->
                        log := (now (), (i, j)) :: !log))
                  kids))
          scenario;
        log
      in
      let e = Engine.create () in
      let log_e = trace (fun t f -> Engine.schedule_at e ~time:t f)
          (fun () -> Engine.now e) in
      Engine.run e;
      let r = Ref_engine.create () in
      let log_r = trace (fun t f -> Ref_engine.schedule_at r ~time:t f)
          (fun () -> r.Ref_engine.now) in
      Ref_engine.run r;
      List.rev !log_e = List.rev !log_r)

(* {2 Processes} *)

let test_sleep_advances_time () =
  let e = Engine.create () in
  let finished = ref 0. in
  Process.spawn e (fun () ->
      Process.sleep 1.;
      Process.sleep 2.;
      finished := Engine.now e);
  Engine.run e;
  check_float "sleeps accumulate" 3. !finished

let test_interleaving () =
  let e = Engine.create () in
  let log = ref [] in
  Process.spawn e (fun () ->
      Process.sleep 1.;
      log := "a1" :: !log;
      Process.sleep 2.;
      log := "a3" :: !log);
  Process.spawn e (fun () ->
      Process.sleep 2.;
      log := "b2" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "interleaved by time" [ "a1"; "b2"; "a3" ]
    (List.rev !log)

let test_suspend_resume () =
  let e = Engine.create () in
  let resumer = ref (fun () -> ()) in
  let state = ref "init" in
  Process.spawn e (fun () ->
      Process.suspend (fun resume -> resumer := resume);
      state := "resumed");
  Engine.run e;
  Alcotest.(check string) "parked" "init" !state;
  !resumer ();
  Engine.run e;
  Alcotest.(check string) "resumed" "resumed" !state

let test_suspend_v_carries_value () =
  let e = Engine.create () in
  let send = ref (fun (_ : int) -> ()) in
  let got = ref 0 in
  Process.spawn e (fun () -> got := Process.suspend_v (fun resume -> send := resume));
  Engine.run e;
  !send 42;
  Engine.run e;
  check_int "value delivered" 42 !got

let test_double_resume_rejected () =
  let e = Engine.create () in
  let resumer = ref (fun () -> ()) in
  Process.spawn e (fun () -> Process.suspend (fun resume -> resumer := resume));
  Engine.run e;
  !resumer ();
  Alcotest.check_raises "double resume" (Invalid_argument "Process: double resume")
    (fun () -> !resumer ())

let test_process_failure_surfaces () =
  let e = Engine.create () in
  Process.spawn e (fun () -> failwith "boom");
  (match Engine.run e with
   | () -> Alcotest.fail "expected Process_failure"
   | exception Process.Process_failure (Failure msg) ->
     Alcotest.(check string) "original exception kept" "boom" msg)

let test_engine_accessor () =
  let e = Engine.create () in
  let ok = ref false in
  Process.spawn e (fun () ->
      Process.sleep 0.25;
      ok := Process.now () = 0.25 && Process.engine () == e);
  Engine.run e;
  check_bool "engine and now visible inside process" true !ok

(* {2 Resources} *)

let test_resource_capacity () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:2 () in
  let concurrent = ref 0 in
  let peak = ref 0 in
  for _ = 1 to 5 do
    Process.spawn e (fun () ->
        Resource.with_slot r (fun () ->
            incr concurrent;
            peak := max !peak !concurrent;
            Process.sleep 1.;
            decr concurrent))
  done;
  Engine.run e;
  check_int "never above capacity" 2 !peak;
  check_float "three waves of service" 3. (Engine.now e)

let test_resource_fifo () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:1 () in
  let order = ref [] in
  for i = 0 to 4 do
    Process.spawn e (fun () ->
        Resource.serve r 1.;
        order := i :: !order)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO grants" [ 0; 1; 2; 3; 4 ] (List.rev !order)

let test_resource_exception_releases () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:1 () in
  let second_ran = ref false in
  Process.spawn e (fun () ->
      (try Resource.with_slot r (fun () -> raise Exit) with Exit -> ()));
  Process.spawn e (fun () -> Resource.with_slot r (fun () -> second_ran := true));
  Engine.run e;
  check_bool "slot released on exception" true !second_ran;
  check_int "nothing held" 0 (Resource.in_use r)

let test_release_unheld_rejected () =
  let r = Resource.create ~capacity:1 () in
  Alcotest.check_raises "release unheld"
    (Invalid_argument "Resource.release: not held") (fun () -> Resource.release r)

let test_queue_length () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:1 () in
  let seen = ref (-1) in
  for i = 0 to 3 do
    Process.spawn e (fun () ->
        if i = 3 then seen := Resource.queue_length r;
        Resource.serve r 1.)
  done;
  Engine.run e;
  check_int "two were queued when the fourth arrived" 2 !seen

let test_bad_capacity () =
  Alcotest.check_raises "capacity 0" (Invalid_argument "Resource.create: capacity < 1")
    (fun () -> ignore (Resource.create ~capacity:0 ()))

(* {2 Mailboxes} *)

let test_mailbox_fifo () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let got = ref [] in
  Process.spawn e (fun () ->
      for _ = 1 to 3 do
        got := Mailbox.recv mb :: !got
      done);
  Process.spawn e (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 2;
      Mailbox.send mb 3);
  Engine.run e;
  Alcotest.(check (list int)) "messages in order" [ 1; 2; 3 ] (List.rev !got)

let test_mailbox_blocks_until_send () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let received_at = ref 0. in
  Process.spawn e (fun () ->
      ignore (Mailbox.recv mb);
      received_at := Engine.now e);
  Process.spawn e (fun () ->
      Process.sleep 5.;
      Mailbox.send mb ());
  Engine.run e;
  check_float "receiver waited" 5. !received_at

let test_mailbox_multiple_receivers () =
  let e = Engine.create () in
  let mb = Mailbox.create () in
  let sum = ref 0 in
  for _ = 1 to 3 do
    Process.spawn e (fun () -> sum := !sum + Mailbox.recv mb)
  done;
  Process.spawn e (fun () ->
      Mailbox.send mb 1;
      Mailbox.send mb 10;
      Mailbox.send mb 100);
  Engine.run e;
  check_int "each got one" 111 !sum

let test_mailbox_recv_opt () =
  let mb = Mailbox.create () in
  Alcotest.(check (option int)) "empty" None (Mailbox.recv_opt mb);
  Mailbox.send mb 7;
  Alcotest.(check (option int)) "nonempty" (Some 7) (Mailbox.recv_opt mb);
  check_bool "drained" true (Mailbox.is_empty mb)

let test_mailbox_clear () =
  let mb = Mailbox.create () in
  Mailbox.send mb 1;
  Mailbox.send mb 2;
  Mailbox.clear mb;
  check_bool "cleared" true (Mailbox.is_empty mb);
  Alcotest.(check (option int)) "nothing left" None (Mailbox.recv_opt mb);
  (* still usable afterwards *)
  Mailbox.send mb 3;
  Alcotest.(check (option int)) "post-clear send" (Some 3) (Mailbox.recv_opt mb)

let drain mb =
  let rec go acc =
    match Mailbox.recv_opt mb with None -> List.rev acc | Some v -> go (v :: acc)
  in
  go []

let test_take_if_scans () =
  let mb = Mailbox.create () in
  List.iter (Mailbox.send mb) [ 1; 2; 3; 4; 5 ];
  Alcotest.(check (option int)) "first even, not head" (Some 2)
    (Mailbox.take_if mb (fun x -> x mod 2 = 0));
  Alcotest.(check (option int)) "no match leaves queue alone" None
    (Mailbox.take_if mb (fun x -> x > 100));
  Alcotest.(check (list int)) "rest keeps FIFO order" [ 1; 3; 4; 5 ] (drain mb)

let test_take_if_wrapped_ring () =
  let mb = Mailbox.create () in
  (* rotate the ring so the live span wraps the end of the array
     (initial capacity 8), then take from the wrapped region *)
  for i = 1 to 8 do Mailbox.send mb i done;
  for _ = 1 to 5 do ignore (Mailbox.recv_opt mb) done;
  for i = 9 to 13 do Mailbox.send mb i done;
  Alcotest.(check (option int)) "match deep in wrapped span" (Some 12)
    (Mailbox.take_if mb (fun x -> x = 12));
  Alcotest.(check (list int)) "survivors in order" [ 6; 7; 8; 9; 10; 11; 13 ]
    (drain mb)

let test_take_head_if () =
  let mb = Mailbox.create () in
  List.iter (Mailbox.send mb) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "non-matching head blocks" None
    (Mailbox.take_head_if mb (fun x -> x = 2));
  Alcotest.(check (option int)) "matching head pops" (Some 1)
    (Mailbox.take_head_if mb (fun x -> x = 1));
  Alcotest.(check (list int)) "rest untouched" [ 2; 3 ] (drain mb)

(* {2 Gates and barriers} *)

let test_gate () =
  let e = Engine.create () in
  let g = Gate.create () in
  let passed = ref 0 in
  for _ = 1 to 3 do
    Process.spawn e (fun () ->
        Gate.wait g;
        incr passed)
  done;
  Process.spawn e (fun () ->
      Process.sleep 1.;
      Gate.open_ g);
  Engine.run e;
  check_int "all released" 3 !passed;
  check_bool "stays open" true (Gate.is_open g)

let test_gate_wait_after_open () =
  let e = Engine.create () in
  let g = Gate.create () in
  Gate.open_ g;
  let ok = ref false in
  Process.spawn e (fun () ->
      Gate.wait g;
      ok := true);
  Engine.run e;
  check_bool "immediate pass" true !ok

let test_barrier_synchronizes () =
  let e = Engine.create () in
  let b = Gate.Barrier.create ~parties:3 () in
  let releases = ref [] in
  List.iter
    (fun d ->
      Process.spawn e (fun () ->
          Process.sleep d;
          Gate.Barrier.await b;
          releases := Engine.now e :: !releases))
    [ 1.; 2.; 3. ];
  Engine.run e;
  Alcotest.(check (list (float 1e-9))) "all release when last arrives" [ 3.; 3.; 3. ]
    !releases

let test_barrier_cyclic () =
  let e = Engine.create () in
  let b = Gate.Barrier.create ~parties:2 () in
  let log = ref [] in
  for i = 0 to 1 do
    Process.spawn e (fun () ->
        for round = 0 to 2 do
          Process.sleep (float_of_int (i + 1));
          Gate.Barrier.await b;
          if i = 0 then log := round :: !log
        done)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "three rounds completed" [ 0; 1; 2 ] (List.rev !log)

(* {2 Rng} *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42L and b = Rng.create ~seed:42L in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  check_bool "same seed, same stream" true (xs = ys)

let test_rng_split_independent () =
  let a = Rng.create ~seed:42L in
  let b = Rng.split a in
  let xs = List.init 10 (fun _ -> Rng.next a) in
  let ys = List.init 10 (fun _ -> Rng.next b) in
  check_bool "split stream differs" true (xs <> ys)

let prop_rng_float_range =
  QCheck2.Test.make ~name:"float in [0,1)" ~count:500 QCheck2.Gen.int64 (fun seed ->
      let rng = Rng.create ~seed in
      let x = Rng.float rng in
      x >= 0. && x < 1.)

let prop_rng_int_range =
  QCheck2.Test.make ~name:"int in [0,bound)" ~count:500
    QCheck2.Gen.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let x = Rng.int rng bound in
      x >= 0 && x < bound)

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:7L in
  for _ = 1 to 100 do
    check_bool "exponential >= 0" true (Rng.exponential rng ~mean:2. >= 0.)
  done

let test_rng_shuffle_permutes () =
  let rng = Rng.create ~seed:1L in
  let arr = Array.init 50 Fun.id in
  let orig = Array.copy arr in
  Rng.shuffle rng arr;
  Array.sort compare arr;
  check_bool "same multiset" true (arr = orig)

(* {2 Stat} *)

let test_counter () =
  let c = Stat.Counter.create () in
  Stat.Counter.incr c;
  Stat.Counter.add c 4;
  check_int "value" 5 (Stat.Counter.value c);
  Stat.Counter.reset c;
  check_int "reset" 0 (Stat.Counter.value c)

let test_summary () =
  let s = Stat.Summary.create () in
  List.iter (Stat.Summary.add s) [ 1.; 2.; 3.; 4. ];
  check_int "count" 4 (Stat.Summary.count s);
  check_float "mean" 2.5 (Stat.Summary.mean s);
  Alcotest.(check (option (float 1e-12))) "min" (Some 1.) (Stat.Summary.min s);
  Alcotest.(check (option (float 1e-12))) "max" (Some 4.) (Stat.Summary.max s);
  Alcotest.(check (float 1e-6)) "stddev" 1.290994 (Stat.Summary.stddev s)

let test_summary_empty () =
  let s = Stat.Summary.create () in
  check_float "mean of empty" 0. (Stat.Summary.mean s);
  check_float "stddev of empty" 0. (Stat.Summary.stddev s)

let test_histogram_quantiles () =
  let h = Stat.Histogram.create ~lo:1e-6 ~hi:1. ~buckets:120 () in
  for i = 1 to 1000 do
    Stat.Histogram.add h (float_of_int i *. 1e-4)
  done;
  check_int "count" 1000 (Stat.Histogram.count h);
  let p50 = Stat.Histogram.quantile h 0.5 in
  check_bool "median near 0.05" true (p50 > 0.04 && p50 < 0.06);
  let p99 = Stat.Histogram.quantile h 0.99 in
  check_bool "p99 near 0.099" true (p99 > 0.08 && p99 < 0.12)

let test_histogram_empty () =
  let h = Stat.Histogram.create ~lo:1e-6 ~hi:1. ~buckets:10 () in
  check_float "quantile of empty" 0. (Stat.Histogram.quantile h 0.5)

let test_throughput () =
  let th = Stat.Throughput.start ~at:10. in
  Stat.Throughput.record th;
  Stat.Throughput.record_n th 9;
  check_int "ops" 10 (Stat.Throughput.ops th);
  check_float "rate" 5. (Stat.Throughput.rate th ~now:12.);
  check_float "zero interval" 0. (Stat.Throughput.rate th ~now:10.)

let test_schedule_at_absolute () =
  let e = Engine.create () in
  let at = ref 0. in
  Engine.schedule e ~delay:1. (fun () ->
      Engine.schedule_at e ~time:5. (fun () -> at := Engine.now e));
  Engine.run e;
  check_float "absolute time honored" 5. !at

let test_histogram_clamps_out_of_range () =
  let h = Stat.Histogram.create ~lo:1e-3 ~hi:1. ~buckets:10 () in
  Stat.Histogram.add h 1e-9;  (* below lo: clamps to first bucket *)
  Stat.Histogram.add h 1e9;   (* above hi: clamps to last bucket *)
  check_int "both counted" 2 (Stat.Histogram.count h);
  check_bool "low quantile near lo" true (Stat.Histogram.quantile h 0.25 < 3e-3);
  check_bool "high quantile near hi" true (Stat.Histogram.quantile h 0.99 > 0.5)

let test_summary_empty_minmax () =
  let s = Stat.Summary.create () in
  Alcotest.(check (option (float 0.))) "min of empty" None (Stat.Summary.min s);
  Alcotest.(check (option (float 0.))) "max of empty" None (Stat.Summary.max s)

let test_summary_stddev_no_nan () =
  (* identical large samples: catastrophic cancellation can drive the
     Welford m2 accumulator a hair below zero; stddev must clamp to 0,
     never sqrt a negative into NaN *)
  let s = Stat.Summary.create () in
  for _ = 1 to 1000 do
    Stat.Summary.add s 1.000000000001e9
  done;
  let sd = Stat.Summary.stddev s in
  check_bool "stddev finite" true (Float.is_finite sd);
  check_bool "stddev >= 0" true (sd >= 0.)

let test_histogram_overflow_honest () =
  let h = Stat.Histogram.create ~lo:1e-3 ~hi:1. ~buckets:10 () in
  Stat.Histogram.add h 0.5;
  Stat.Histogram.add h 7.25;   (* above hi *)
  Stat.Histogram.add h 120.;   (* far above hi *)
  check_int "count includes overflow" 3 (Stat.Histogram.count h);
  check_int "overflow counted separately" 2 (Stat.Histogram.overflow h);
  Alcotest.(check (option (float 0.)))
    "max_seen is the exact observed max" (Some 120.) (Stat.Histogram.max_seen h);
  (* 2 of 3 samples exceed hi: the upper quantiles land in the overflow
     region and must report the exact observed max, not hi *)
  check_float "p99 = observed max, not clamped to hi" 120.
    (Stat.Histogram.quantile h 0.99);
  check_float "p67 also in overflow" 120. (Stat.Histogram.quantile h 0.67);
  (* the in-range sample still answers the low quantile from its bucket,
     not from the overflow region *)
  check_bool "p25 stays in range (not overflow)" true
    (Stat.Histogram.quantile h 0.25 <= 1.0 +. 1e-9)

(* Golden check: bucketed quantiles against the exact sorted-sample
   quantiles, within one log-bucket of relative error. *)
let test_histogram_golden_quantiles () =
  let lo = 1e-6 and hi = 10. and buckets = 300 in
  let h = Stat.Histogram.create ~lo ~hi ~buckets () in
  let rng = Rng.create ~seed:42L in
  let samples = Array.init 5000 (fun _ -> Rng.exponential rng ~mean:2e-3) in
  Array.iter (Stat.Histogram.add h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  (* one bucket spans a ratio of (hi/lo)^(1/buckets); allow two buckets *)
  let tol = ((hi /. lo) ** (2. /. float_of_int buckets)) +. 0.001 in
  List.iter
    (fun q ->
      let exact = sorted.(int_of_float (q *. float_of_int (Array.length sorted - 1))) in
      let est = Stat.Histogram.quantile h q in
      check_bool
        (Printf.sprintf "q%.2f: est %.6g within tol of exact %.6g" q est exact)
        true
        (est <= exact *. tol && est >= exact /. tol))
    [ 0.5; 0.9; 0.95; 0.99 ];
  check_float "q1.0 is the exact max"
    sorted.(Array.length sorted - 1)
    (Stat.Histogram.quantile h 1.0)

let test_rng_int_rejection () =
  let rng = Rng.create ~seed:9L in
  (* a bound that is nowhere near a power of two: modulo would bias it *)
  let bound = 3 in
  let counts = Array.make bound 0 in
  let draws = 30_000 in
  for _ = 1 to draws do
    let v = Rng.int rng bound in
    check_bool "in range" true (v >= 0 && v < bound);
    counts.(v) <- counts.(v) + 1
  done;
  let expect = float_of_int draws /. float_of_int bound in
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d within 5%% of uniform (%d)" i c)
        true
        (Float.abs (float_of_int c -. expect) < 0.05 *. expect))
    counts;
  (* huge bounds must not overflow or loop: 2^62 holds any OCaml bound *)
  for _ = 1 to 100 do
    let v = Rng.int rng max_int in
    check_bool "max_int bound in range" true (v >= 0)
  done

let test_resource_wait_hold_summaries () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:1 () in
  for _ = 1 to 3 do
    Process.spawn e (fun () ->
        Resource.with_slot r (fun () -> Process.sleep 2.))
  done;
  Engine.run e;
  let wait = Resource.wait_summary r and hold = Resource.hold_summary r in
  check_int "three waits recorded" 3 (Stat.Summary.count wait);
  check_int "three holds recorded" 3 (Stat.Summary.count hold);
  (* arrivals tie at t=0: waits are 0, 2 and 4 seconds *)
  Alcotest.(check (option (float 1e-9))) "longest wait" (Some 4.)
    (Stat.Summary.max wait);
  Alcotest.(check (float 1e-9)) "mean hold = service" 2. (Stat.Summary.mean hold)

let test_rng_uniform_and_pick () =
  let rng = Rng.create ~seed:3L in
  for _ = 1 to 200 do
    let x = Rng.uniform rng ~lo:5. ~hi:7. in
    check_bool "uniform in [5,7)" true (x >= 5. && x < 7.)
  done;
  let arr = [| "a"; "b"; "c" |] in
  for _ = 1 to 50 do
    check_bool "pick from array" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "pick empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_resource_with_slot_returns_value () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:1 () in
  let got = ref 0 in
  Process.spawn e (fun () -> got := Resource.with_slot r (fun () -> 41 + 1));
  Engine.run e;
  check_int "value returned" 42 !got

(* {2 Determinism of a whole simulation} *)

let run_mini_sim () =
  let e = Engine.create () in
  let r = Resource.create ~capacity:2 () in
  let rng = Rng.create ~seed:99L in
  let log = Buffer.create 256 in
  for i = 0 to 9 do
    Process.spawn e (fun () ->
        Process.sleep (Rng.float rng);
        Resource.serve r (Rng.float rng *. 0.1);
        Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Engine.now e)))
  done;
  Engine.run e;
  Buffer.contents log

let test_whole_sim_deterministic () =
  Alcotest.(check string) "identical traces" (run_mini_sim ()) (run_mini_sim ())

(* {2 Fault-injectable network} *)

module Net = Simkit.Net

let mk_net ?default_latency () =
  let e = Engine.create () in
  let n = Net.create ?default_latency ~seed:7L e in
  let a = Net.endpoint n "a" and b = Net.endpoint n "b" in
  (e, n, a, b)

(* Count deliveries of [k] messages a->b after running to quiescence. *)
let deliveries e n ~src ~dst k =
  let got = ref 0 in
  for _ = 1 to k do
    Net.send n ~src ~dst (fun () -> incr got)
  done;
  Engine.run e;
  !got

let test_net_delivers_and_counts () =
  let e, n, a, b = mk_net () in
  check_int "all delivered" 5 (deliveries e n ~src:a ~dst:b 5);
  check_int "sent" 5 (Net.sent n);
  check_int "delivered" 5 (Net.delivered n);
  check_int "dropped" 0 (Net.dropped n);
  check_int "duplicated" 0 (Net.duplicated n)

let test_net_partition_and_heal () =
  let e, n, a, b = mk_net () in
  Net.partition n [ [ a ]; [ b ] ];
  check_int "partitioned: nothing crosses" 0 (deliveries e n ~src:a ~dst:b 3);
  check_int "counted as dropped" 3 (Net.dropped n);
  Net.heal n;
  check_int "healed: delivers again" 3 (deliveries e n ~src:a ~dst:b 3)

let test_net_partition_unnamed_reaches_everyone () =
  let e, n, a, b = mk_net () in
  let c = Net.endpoint n "c" in
  Net.partition n [ [ a ]; [ b ] ];
  (* [c] is in no group: it reaches (and is reached by) both sides,
     while the named groups stay cut off from each other *)
  check_int "c->a unaffected" 2 (deliveries e n ~src:c ~dst:a 2);
  check_int "c->b unaffected" 2 (deliveries e n ~src:c ~dst:b 2);
  check_int "a->b cut" 0 (deliveries e n ~src:a ~dst:b 2)

let test_net_oneway_block () =
  let e, n, a, b = mk_net () in
  Net.block_oneway n ~src:a ~dst:b;
  check_int "blocked direction" 0 (deliveries e n ~src:a ~dst:b 3);
  check_int "reverse direction open" 3 (deliveries e n ~src:b ~dst:a 3);
  Net.heal n;
  check_int "heal removes the block" 3 (deliveries e n ~src:a ~dst:b 3)

let test_net_follow_rides_partition () =
  let e, n, a, b = mk_net () in
  let client = Net.endpoint ~follow:a n "client" in
  Net.partition n [ [ a ]; [ b ] ];
  check_int "follower reaches its server" 2
    (deliveries e n ~src:client ~dst:a 2);
  check_int "follower cut from the far side" 0
    (deliveries e n ~src:client ~dst:b 2)

let test_net_drop_probability () =
  let e, n, a, b = mk_net () in
  Net.set_drop n 1.0;
  check_int "p=1 drops all" 0 (deliveries e n ~src:a ~dst:b 4);
  Net.set_drop n 0.0;
  check_int "p=0 drops none" 4 (deliveries e n ~src:a ~dst:b 4);
  Net.set_drop n 0.5;
  let got = deliveries e n ~src:a ~dst:b 200 in
  check_bool "p=0.5 drops some" true (got > 50 && got < 150);
  check_int "sent = delivered + dropped" (Net.sent n)
    (Net.delivered n + Net.dropped n)

let test_net_duplicate () =
  let e, n, a, b = mk_net () in
  Net.set_duplicate n 1.0;
  let got = deliveries e n ~src:a ~dst:b 3 in
  check_int "each message delivered twice" 6 got;
  check_int "duplicated counter" 3 (Net.duplicated n)

let test_net_extra_delay () =
  let e, n, a, b = mk_net ~default_latency:(Net.Fixed 0.001) () in
  let at = ref 0. in
  Net.set_extra_delay n 0.25;
  Net.send n ~src:a ~dst:b (fun () -> at := Engine.now e);
  Engine.run e;
  check_bool "delay added on top of latency" true
    (!at >= 0.251 -. 1e-9 && !at < 0.3)

(* With every knob at rest, Net must not consume randomness: the RNG
   draws (and hence any seeded behaviour downstream) are identical with
   and without the Net in the path. *)
let test_net_quiet_draws_no_randomness () =
  let trace knobs =
    let e = Engine.create () in
    let n = Net.create ~seed:99L e in
    let a = Net.endpoint n "a" and b = Net.endpoint n "b" in
    if knobs then Net.set_drop n 0.0; (* setting a zero knob changes nothing *)
    let log = Buffer.create 64 in
    for i = 1 to 20 do
      Net.send n ~src:a ~dst:b (fun () ->
          Buffer.add_string log (Printf.sprintf "%d@%.9f;" i (Engine.now e)))
    done;
    Engine.run e;
    Buffer.contents log
  in
  Alcotest.(check string) "fault-free schedule is knob-independent"
    (trace false) (trace true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "simkit"
    [ ( "engine",
        [ Alcotest.test_case "initial state" `Quick test_initial_state;
          Alcotest.test_case "schedule order" `Quick test_schedule_order;
          Alcotest.test_case "fifo on ties" `Quick test_fifo_on_ties;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "stop" `Quick test_stop;
          Alcotest.test_case "negative delay rejected" `Quick test_negative_delay_rejected;
          Alcotest.test_case "past schedule rejected" `Quick test_past_schedule_rejected;
          Alcotest.test_case "executed counter" `Quick test_executed_counter;
          Alcotest.test_case "stop under until" `Quick test_stop_under_until;
          Alcotest.test_case "run until empty queue" `Quick
            test_run_until_empty_queue;
          qc prop_heap_order;
          qc prop_matches_reference_heap ] );
      ( "process",
        [ Alcotest.test_case "sleep advances time" `Quick test_sleep_advances_time;
          Alcotest.test_case "interleaving" `Quick test_interleaving;
          Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
          Alcotest.test_case "suspend_v value" `Quick test_suspend_v_carries_value;
          Alcotest.test_case "double resume rejected" `Quick test_double_resume_rejected;
          Alcotest.test_case "failure surfaces" `Quick test_process_failure_surfaces;
          Alcotest.test_case "engine accessor" `Quick test_engine_accessor ] );
      ( "resource",
        [ Alcotest.test_case "capacity bound" `Quick test_resource_capacity;
          Alcotest.test_case "fifo grants" `Quick test_resource_fifo;
          Alcotest.test_case "exception releases" `Quick test_resource_exception_releases;
          Alcotest.test_case "release unheld rejected" `Quick test_release_unheld_rejected;
          Alcotest.test_case "queue length" `Quick test_queue_length;
          Alcotest.test_case "bad capacity" `Quick test_bad_capacity ] );
      ( "mailbox",
        [ Alcotest.test_case "fifo" `Quick test_mailbox_fifo;
          Alcotest.test_case "blocks until send" `Quick test_mailbox_blocks_until_send;
          Alcotest.test_case "multiple receivers" `Quick test_mailbox_multiple_receivers;
          Alcotest.test_case "recv_opt" `Quick test_mailbox_recv_opt;
          Alcotest.test_case "clear" `Quick test_mailbox_clear;
          Alcotest.test_case "take_if scans past head" `Quick test_take_if_scans;
          Alcotest.test_case "take_if wrapped ring" `Quick
            test_take_if_wrapped_ring;
          Alcotest.test_case "take_head_if head only" `Quick
            test_take_head_if ] );
      ( "net",
        [ Alcotest.test_case "delivers and counts" `Quick
            test_net_delivers_and_counts;
          Alcotest.test_case "partition and heal" `Quick
            test_net_partition_and_heal;
          Alcotest.test_case "unnamed endpoints unaffected" `Quick
            test_net_partition_unnamed_reaches_everyone;
          Alcotest.test_case "one-way block" `Quick test_net_oneway_block;
          Alcotest.test_case "follower rides partition" `Quick
            test_net_follow_rides_partition;
          Alcotest.test_case "drop probability" `Quick
            test_net_drop_probability;
          Alcotest.test_case "duplicate delivery" `Quick test_net_duplicate;
          Alcotest.test_case "extra delay" `Quick test_net_extra_delay;
          Alcotest.test_case "quiet net draws no randomness" `Quick
            test_net_quiet_draws_no_randomness ] );
      ( "gate",
        [ Alcotest.test_case "broadcast" `Quick test_gate;
          Alcotest.test_case "wait after open" `Quick test_gate_wait_after_open;
          Alcotest.test_case "barrier synchronizes" `Quick test_barrier_synchronizes;
          Alcotest.test_case "barrier cyclic" `Quick test_barrier_cyclic ] );
      ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split independent" `Quick test_rng_split_independent;
          qc prop_rng_float_range;
          qc prop_rng_int_range;
          Alcotest.test_case "exponential positive" `Quick test_rng_exponential_positive;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes ] );
      ( "stat",
        [ Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "summary" `Quick test_summary;
          Alcotest.test_case "summary empty" `Quick test_summary_empty;
          Alcotest.test_case "summary empty min/max" `Quick test_summary_empty_minmax;
          Alcotest.test_case "summary stddev no NaN" `Quick test_summary_stddev_no_nan;
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "histogram overflow honest" `Quick
            test_histogram_overflow_honest;
          Alcotest.test_case "histogram golden quantiles" `Quick
            test_histogram_golden_quantiles;
          Alcotest.test_case "rng int rejection sampling" `Quick test_rng_int_rejection;
          Alcotest.test_case "resource wait/hold summaries" `Quick
            test_resource_wait_hold_summaries;
          Alcotest.test_case "throughput" `Quick test_throughput ] );
      ( "edges",
        [ Alcotest.test_case "schedule_at absolute" `Quick test_schedule_at_absolute;
          Alcotest.test_case "histogram clamps" `Quick test_histogram_clamps_out_of_range;
          Alcotest.test_case "rng uniform and pick" `Quick test_rng_uniform_and_pick;
          Alcotest.test_case "with_slot returns value" `Quick
            test_resource_with_slot_returns_value ] );
      ( "determinism",
        [ Alcotest.test_case "whole sim deterministic" `Quick
            test_whole_sim_deterministic ] ) ]
