(* The chaos harness end to end: seeded random fault schedules over the
   replicated (and sharded) coordination service, with the Wing–Gong
   linearizability checker as the oracle. Covers: determinism (same
   seed ⇒ bit-identical history digest), zero violations on small
   chaos runs, the oracle's teeth (disabling exactly-once dedup must
   produce violations the checker catches), and the sharded-partition
   scenario — one shard's leader partitioned from its quorum stalls
   that shard only, heals, and the znode accounting comes out exact. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Ensemble = Zk.Ensemble
module Faultplan = Faults.Faultplan
module Systems = Scenarios.Systems

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let no_violations label (r : Systems.chaos_run) =
  List.iter
    (fun (v : Zk.History.violation) ->
      Printf.printf "%s VIOLATION [%s] %s: %s\n%!" label v.Zk.History.v_kind
        v.Zk.History.v_path v.Zk.History.v_detail)
    r.Systems.violations;
  check_int (label ^ ": zero violations") 0 (List.length r.Systems.violations)

(* {2 Chaos runs are seed-deterministic and linearizable} *)

let small_run ?(shards = 1) ~seed () =
  Systems.chaos_run ~servers:3 ~shards ~clients:4 ~registers:3 ~heal_at:6.
    ~post_heal:4. ~events:6 ~seed ()

let test_chaos_deterministic_and_clean () =
  let a = small_run ~seed:5L () in
  let b = small_run ~seed:5L () in
  check_string "same seed, bit-identical history digest" a.Systems.digest
    b.Systems.digest;
  check_int "same seed, same op count" a.Systems.recorded b.Systems.recorded;
  check_bool "a real workload ran" true (a.Systems.checked > 200);
  check_bool "faults actually fired" true (a.Systems.faults_fired >= 6);
  no_violations "chaos" a;
  check_bool "recovered after heal" true (Float.is_finite a.Systems.recovery_s);
  let c = small_run ~seed:6L () in
  check_bool "different seed, different history" true
    (a.Systems.digest <> c.Systems.digest)

let test_chaos_sharded_clean () =
  let r = small_run ~shards:2 ~seed:7L () in
  no_violations "sharded chaos" r;
  check_bool "sharded run recorded ops" true (r.Systems.checked > 200);
  check_bool "sharded run recovered" true (Float.is_finite r.Systems.recovery_s)

(* {2 The oracle has teeth}

   Under a lossy network, client retries are answered by the dedup
   table exactly once. With the filter disabled ([unsafe_no_dedup]) a
   retried create/delete whose first attempt committed is applied
   again, so the client observes ZNODEEXISTS/ZNONODE for an operation
   no other client can explain — the checker must call that out, on a
   schedule where the honest configuration checks out clean. *)

let teeth_plan = "drop=0.3@1;heal@6"

let teeth_run ~unsafe_no_dedup ~seed =
  let plan =
    match Faultplan.parse teeth_plan with
    | Ok p -> p
    | Error msg -> Alcotest.failf "parse %S: %s" teeth_plan msg
  in
  Systems.chaos_run ~servers:3 ~shards:1 ~clients:4 ~registers:2 ~heal_at:6.
    ~post_heal:4. ~think:0.03 ~unsafe_no_dedup ~plan ~seed ()

let test_checker_teeth () =
  (* With dedup on, the same seeds and the same lossy schedule are
     clean — so any violation below is the double-apply, not the plan. *)
  let seeds = [ 1L; 2L; 3L ] in
  let honest = List.map (fun seed -> teeth_run ~unsafe_no_dedup:false ~seed) seeds in
  List.iter (no_violations "dedup on") honest;
  check_bool "lossy schedule exercised the dedup table" true
    (List.exists (fun (r : Systems.chaos_run) -> r.Systems.dedup_hits > 0) honest);
  let broken =
    List.map (fun seed -> teeth_run ~unsafe_no_dedup:true ~seed) seeds
  in
  check_bool "disabling dedup produces a linearizability violation" true
    (List.exists
       (fun (r : Systems.chaos_run) -> r.Systems.violations <> [])
       broken)

(* {2 Sharded partition: one shard stalls, the rest keep committing} *)

let chaos_config ~servers ~seed =
  (* Small enough that the session layer's internal retry budget
     (8 attempts) exhausts inside the 2 s partition window and the
     failure surfaces to the caller. *)
  { (Ensemble.default_config ~servers) with
    Ensemble.seed;
    request_timeout = 0.1;
    retry_backoff = 0.02;
    retry_backoff_cap = 0.05;
    session_timeout = 30.;
    fail_fast_after = 1.0 }

let test_sharded_partition_progress_and_accounting () =
  let engine = Engine.create () in
  let router =
    Zk.Shard_router.start engine ~shards:2 (chaos_config ~servers:3 ~seed:42L)
  in
  (* Two top-level dirs homed on different shards: each dir's children
     live on the shard owning the dir itself. *)
  let setup = Zk.Shard_router.session router () in
  let dirs = [ "/a"; "/b"; "/c"; "/d" ] in
  Process.spawn engine (fun () ->
      List.iter
        (fun d ->
          match setup.Zk.Zk_client.create d ~data:"" with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "setup %s: %s" d (Zk.Zerror.to_string e))
        dirs);
  Engine.run engine;
  let shard_of d = Zk.Shard_router.home_shard router (d ^ "/x") in
  let dir_on_0 = List.find (fun d -> shard_of d = 0) dirs in
  let dir_on_1 = List.find (fun d -> shard_of d = 1) dirs in
  let ensembles = Zk.Shard_router.ensembles router in
  let files = 30 in
  let ok = [| 0; 0 |] and timeouts = [| 0; 0 |] in
  let writer shard dir =
    Process.spawn engine (fun () ->
        let s = Zk.Shard_router.session router () in
        for i = 0 to files - 1 do
          let path = Printf.sprintf "%s/f%d" dir i in
          let rec attempt () =
            match s.Zk.Zk_client.create path ~data:"" with
            | Ok _ -> ok.(shard) <- ok.(shard) + 1
            | Error Zk.Zerror.ZNODEEXISTS ->
              (* an earlier timed-out attempt committed *)
              ok.(shard) <- ok.(shard) + 1
            | Error
                (Zk.Zerror.ZOPERATIONTIMEOUT | Zk.Zerror.ZCONNECTIONLOSS) ->
              timeouts.(shard) <- timeouts.(shard) + 1;
              Process.sleep 0.1;
              attempt ()
            | Error e ->
              Alcotest.failf "create %s: %s" path (Zk.Zerror.to_string e)
          in
          attempt ();
          Process.sleep 0.05
        done)
  in
  writer 0 dir_on_0;
  writer 1 dir_on_1;
  (* Partition shard 1's leader away from its followers: the oracle
     election ignores partitions (documented blind spot), so the shard
     is write-dead — safe but not live — until heal. Shard 0 is
     untouched. *)
  let committed_at_partition = [| 0; 0 |] in
  let committed_before_heal = [| 0; 0 |] in
  Engine.schedule engine ~delay:0.4 (fun () ->
      let leader =
        match Ensemble.leader_id ensembles.(1) with
        | Some id -> id
        | None -> Alcotest.fail "shard 1 has no leader"
      in
      Ensemble.partition ensembles.(1) [ [ leader ] ];
      Array.iteri
        (fun i e -> committed_at_partition.(i) <- Ensemble.writes_committed e)
        ensembles);
  Engine.schedule engine ~delay:2.4 (fun () ->
      Array.iteri
        (fun i e -> committed_before_heal.(i) <- Ensemble.writes_committed e)
        ensembles;
      Ensemble.heal ensembles.(1));
  Engine.run engine;
  check_int "shard 0 finished every create" files ok.(0);
  check_int "shard 1 finished every create after heal" files ok.(1);
  check_bool "shard 0 kept committing through the partition" true
    (committed_before_heal.(0) > committed_at_partition.(0));
  check_int "partitioned shard committed nothing"
    committed_at_partition.(1) committed_before_heal.(1);
  check_bool "partitioned shard's clients timed out" true (timeouts.(1) > 0);
  check_int "healthy shard's clients never timed out" 0 timeouts.(0);
  (* Exact accounting: every user znode is a setup dir or a counted
     create — no write lost, none doubled. *)
  check_int "logical znode population exact"
    (List.length dirs + (2 * files))
    (Zk.Shard_router.logical_population router)

let () =
  Alcotest.run "chaos"
    [ ( "chaos",
        [ Alcotest.test_case "seed-deterministic, linearizable, recovers"
            `Quick test_chaos_deterministic_and_clean;
          Alcotest.test_case "4-shard chaos clean" `Quick
            test_chaos_sharded_clean ] );
      ( "oracle",
        [ Alcotest.test_case "teeth: no-dedup double-applies are caught"
            `Quick test_checker_teeth ] );
      ( "sharded-partition",
        [ Alcotest.test_case "one shard stalls, others commit, exact accounting"
            `Quick test_sharded_partition_progress_and_accounting ] ) ]
