(* The client cache's coherence machinery: the three watch-lifecycle
   bugfixes (stale re-fill fencing, watch release on failed reads,
   watch cancellation on LRU eviction), lease-mode coherence — expiry
   on the sim clock, the aggregated revocation channel, the TTL
   staleness bound after a lease-table loss — the observer gap-repair
   fix, and a qcheck property pinning lease mode to watch mode over
   random interleavings. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Ensemble = Zk.Ensemble
module Zk_local = Zk.Zk_local
module Zk_client = Zk.Zk_client
module Ztree = Zk.Ztree
module Zerror = Zk.Zerror
module Cache = Dufs.Cache

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let zk_ok label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Zk.Zerror.to_string e)

let get_data label h path = fst (zk_ok label (h.Zk_client.get path))

(* {2 Satellite 1: the stale re-fill race}

   The window: a fill's read reply is in flight when the entry's watch
   event is consumed (a concurrent writer committed). The fix fences
   every fill with a per-path generation snapshot, so the stale reply
   is dropped instead of being cached with no watch guarding it.

   Zk_local is synchronous, so the race is staged by interposing on the
   wire: the read completes server-side (arming the watch), then the
   concurrent write lands — firing the just-armed watch — before the
   old value is handed back to the cache. *)

let test_stale_refill_race_fenced () =
  let service = Zk_local.create () in
  let writer = Zk_local.session service in
  let raw = Zk_local.session service in
  ignore (zk_ok "seed" (writer.Zk_client.create "/hot" ~data:"v1"));
  let raced = ref false in
  let coord =
    { raw with
      Zk_client.get_watch =
        (fun path cb ->
          let result = raw.Zk_client.get_watch path cb in
          if (not !raced) && path = "/hot" then begin
            raced := true;
            ignore (zk_ok "racing set" (writer.Zk_client.set "/hot" ~data:"v2"))
          end;
          result) }
  in
  let cache = Cache.wrap coord in
  let cached = Cache.handle cache in
  (* the racing fill itself may legally return the old value... *)
  check_string "racing fill returns what the server read" "v1"
    (get_data "racing fill" cached "/hot");
  (* ...but it must NOT have cached it: the next read refetches *)
  check_string "next read sees the concurrent write" "v2"
    (get_data "re-read" cached "/hot");
  check_string "and the fresh fill is cached normally" "v2"
    (get_data "cached" cached "/hot")

let test_stale_bulk_refill_race_fenced () =
  (* same race against the bulk readdir fill: the listing's reply is
     overtaken by a create under the directory *)
  let service = Zk_local.create () in
  let writer = Zk_local.session service in
  let raw = Zk_local.session service in
  ignore (zk_ok "mkdir" (writer.Zk_client.create "/d" ~data:""));
  ignore (zk_ok "seed" (writer.Zk_client.create "/d/a" ~data:""));
  let raced = ref false in
  let coord =
    { raw with
      Zk_client.children_with_data_watch =
        (fun path cb ->
          let result = raw.Zk_client.children_with_data_watch path cb in
          if (not !raced) && path = "/d" then begin
            raced := true;
            ignore (zk_ok "racing create" (writer.Zk_client.create "/d/b" ~data:""))
          end;
          result) }
  in
  let cache = Cache.wrap coord in
  let cached = Cache.handle cache in
  check_int "racing listing returns what the server read" 1
    (List.length (zk_ok "racing fill" (cached.Zk_client.children_with_data "/d")));
  check_int "next listing sees the concurrent create" 2
    (List.length (zk_ok "re-list" (cached.Zk_client.children_with_data "/d")))

(* {2 Satellite 2: failed reads release their armed watch}

   The server arms the piggybacked watch before the reply is sent; if
   the reply is lost (timeout, connection loss) the old code cached
   nothing and leaked the registration forever. *)

let test_failed_read_releases_watch () =
  let service = Zk_local.create () in
  let writer = Zk_local.session service in
  let raw = Zk_local.session service in
  ignore (zk_ok "mkdir" (writer.Zk_client.create "/d" ~data:""));
  ignore (zk_ok "seed" (writer.Zk_client.create "/d/f" ~data:"x"));
  let coord =
    { raw with
      Zk_client.get_watch =
        (fun path cb ->
          (* server armed the watch, reply lost on the way back *)
          ignore (raw.Zk_client.get_watch path cb);
          Error Zerror.ZCONNECTIONLOSS);
      children_watch =
        (fun path cb ->
          ignore (raw.Zk_client.children_watch path cb);
          Error Zerror.ZCONNECTIONLOSS) }
  in
  let metrics = Obs.Metrics.create () in
  let cache = Cache.wrap ~metrics coord in
  let cached = Cache.handle cache in
  (match cached.Zk_client.get "/d/f" with
  | Error Zerror.ZCONNECTIONLOSS -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the injected transport failure");
  (match cached.Zk_client.children "/d" with
  | Error Zerror.ZCONNECTIONLOSS -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected the injected transport failure");
  check_int "no watch left registered server-side" 0
    (Ztree.watch_count (Zk_local.tree service));
  check_int "both releases counted" 2 (Cache.watch_releases cache);
  check_int "and mirrored into the metrics registry" 2
    (Simkit.Stat.Counter.value (Obs.Metrics.counter metrics "cache.watch.released"))

(* {2 Satellite 3: LRU eviction cancels the evicted entry's watch}

   Without cancellation the server's watch tables grow with every znode
   the cache has EVER held — O(workload), not O(capacity). *)

let test_eviction_keeps_server_watch_table_bounded () =
  let service = Zk_local.create () in
  let writer = Zk_local.session service in
  ignore (zk_ok "mkdir" (writer.Zk_client.create "/d" ~data:""));
  for i = 0 to 199 do
    ignore
      (zk_ok "seed" (writer.Zk_client.create (Printf.sprintf "/d/f%03d" i) ~data:""))
  done;
  let capacity = 8 in
  let cache = Cache.wrap ~capacity (Zk_local.session service) in
  let cached = Cache.handle cache in
  for i = 0 to 199 do
    ignore (zk_ok "read" (cached.Zk_client.get (Printf.sprintf "/d/f%03d" i)))
  done;
  check_int "server watch table tracks live cache contents" capacity
    (Ztree.watch_count (Zk_local.tree service));
  check_int "every eviction released its watch" (200 - capacity)
    (Cache.watch_releases cache);
  (* overwrite path: re-filling a present entry must not stack watches *)
  let writer_cache = Cache.wrap ~capacity (Zk_local.session service) in
  let wc = Cache.handle writer_cache in
  for _round = 0 to 4 do
    for i = 0 to 3 do
      let p = Printf.sprintf "/d/f%03d" i in
      ignore (zk_ok "read" (wc.Zk_client.get p));
      ignore (zk_ok "set" (wc.Zk_client.set p ~data:"w"))
    done
  done;
  check_bool "no watch accumulation across refills" true
    (Ztree.watch_count (Zk_local.tree service) <= 2 * capacity + 4)

(* {2 Lease mode: zero per-znode server state}

   The server-state shape the sessions bench measures: watch coherence
   is O(cached znodes); lease coherence is O(session working dirs). *)

let test_lease_mode_server_state_is_per_directory () =
  let service = Zk_local.create () in
  let writer = Zk_local.session service in
  for d = 0 to 3 do
    ignore
      (zk_ok "mkdir" (writer.Zk_client.create (Printf.sprintf "/d%d" d) ~data:""));
    for i = 0 to 49 do
      ignore
        (zk_ok "seed"
           (writer.Zk_client.create (Printf.sprintf "/d%d/f%02d" d i) ~data:""))
    done
  done;
  let cache = Cache.wrap ~coherence:Cache.Leases (Zk_local.session service) in
  let cached = Cache.handle cache in
  for d = 0 to 3 do
    for i = 0 to 49 do
      ignore (zk_ok "read" (cached.Zk_client.get (Printf.sprintf "/d%d/f%02d" d i)))
    done
  done;
  check_int "no per-znode watches at all" 0
    (Ztree.watch_count (Zk_local.tree service));
  check_bool "lease table holds one interest per working directory" true
    (Zk.Lease.entries (Zk_local.leases service) <= 4);
  check_int "200 reads cost 4 grants" 4 (Zk.Lease.granted (Zk_local.leases service));
  check_int "and 196 renewals" 196 (Zk.Lease.renewed (Zk_local.leases service))

let test_lease_revocation_channel () =
  (* committed changes reach the leased cache synchronously through the
     session's single aggregated invalidation callback *)
  let service = Zk_local.create () in
  let writer = Zk_local.session service in
  ignore (zk_ok "mkdir" (writer.Zk_client.create "/d" ~data:""));
  ignore (zk_ok "seed" (writer.Zk_client.create "/d/f" ~data:"v1"));
  let cache = Cache.wrap ~coherence:Cache.Leases (Zk_local.session service) in
  let cached = Cache.handle cache in
  check_string "warm" "v1" (get_data "warm" cached "/d/f");
  check_int "listing warm" 1
    (List.length (zk_ok "list" (cached.Zk_client.children "/d")));
  ignore (zk_ok "set" (writer.Zk_client.set "/d/f" ~data:"v2"));
  check_string "set revokes the data lease" "v2" (get_data "reread" cached "/d/f");
  ignore (zk_ok "create" (writer.Zk_client.create "/d/g" ~data:""));
  check_int "create revokes the listing lease" 2
    (List.length (zk_ok "relist" (cached.Zk_client.children "/d")));
  ignore (zk_ok "delete" (writer.Zk_client.delete "/d/g"));
  check_int "delete revokes it again" 1
    (List.length (zk_ok "relist2" (cached.Zk_client.children "/d")));
  (* negative caching: a leased ZNONODE answer is revoked by creation *)
  (match cached.Zk_client.get "/d/new" with
  | Error Zerror.ZNONODE -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected ZNONODE");
  ignore (zk_ok "create new" (writer.Zk_client.create "/d/new" ~data:"born"));
  check_string "creation revokes the negative entry" "born"
    (get_data "negative revoked" cached "/d/new");
  check_bool "revocations were pushed, not polled" true
    (Zk.Lease.revoked (Zk_local.leases service) >= 4)

let test_lease_expiry_on_sim_clock () =
  let now = ref 0.0 in
  let service = Zk_local.create ~clock:(fun () -> !now) ~lease_ttl:5.0 () in
  let writer = Zk_local.session service in
  ignore (zk_ok "mkdir" (writer.Zk_client.create "/d" ~data:""));
  ignore (zk_ok "seed" (writer.Zk_client.create "/d/f" ~data:"x"));
  let cache =
    Cache.wrap ~coherence:Cache.Leases ~now:(fun () -> !now)
      (Zk_local.session service)
  in
  let cached = Cache.handle cache in
  ignore (zk_ok "fill" (cached.Zk_client.get "/d/f"));
  let misses_after_fill = Cache.misses cache in
  now := 4.9;
  ignore (zk_ok "hit" (cached.Zk_client.get "/d/f"));
  check_int "within the lease: served locally" misses_after_fill
    (Cache.misses cache);
  check_int "no expiry yet" 0 (Cache.lease_expired_hits cache);
  now := 5.0;
  ignore (zk_ok "refill" (cached.Zk_client.get "/d/f"));
  check_int "at the deadline: entry expired, refetched" (misses_after_fill + 1)
    (Cache.misses cache);
  check_int "expired hit counted" 1 (Cache.lease_expired_hits cache);
  (* the refill re-granted: the server saw the first interest expire *)
  check_int "server observed the expired interest" 1
    (Zk.Lease.expired (Zk_local.leases service));
  check_int "and granted twice in total" 2
    (Zk.Lease.granted (Zk_local.leases service));
  now := 9.9;
  ignore (zk_ok "hit2" (cached.Zk_client.get "/d/f"));
  check_int "the new lease serves locally again" (misses_after_fill + 1)
    (Cache.misses cache)

let test_lease_staleness_bounded_by_ttl () =
  (* the protocol's staleness bound: a crashed replica loses its lease
     table with its RAM, so revocations stop — but only until the
     deadline, after which every entry self-expires *)
  let now = ref 0.0 in
  let service = Zk_local.create ~clock:(fun () -> !now) ~lease_ttl:5.0 () in
  let writer = Zk_local.session service in
  ignore (zk_ok "mkdir" (writer.Zk_client.create "/d" ~data:""));
  ignore (zk_ok "seed" (writer.Zk_client.create "/d/f" ~data:"old"));
  let cache =
    Cache.wrap ~coherence:Cache.Leases ~now:(fun () -> !now)
      (Zk_local.session service)
  in
  let cached = Cache.handle cache in
  check_string "warm" "old" (get_data "warm" cached "/d/f");
  (* the serving replica crashes: its lease table is gone *)
  Zk.Lease.clear (Zk_local.leases service);
  ignore (zk_ok "unrevoked write" (writer.Zk_client.set "/d/f" ~data:"new"));
  now := 1.0;
  check_string "within the TTL the client may serve the stale value" "old"
    (get_data "stale window" cached "/d/f");
  now := 5.0;
  check_string "past the deadline it must refetch" "new"
    (get_data "bounded" cached "/d/f")

(* {2 Satellite 4: observers repair Inform gaps before serving}

   An observer that misses Inform messages (partition, loss) must not
   skip the gap: it buffers, fetches the missing committed entries from
   the leader, applies strictly in zxid order, and only then advances
   its freshness stamp. The old code skipped the gap — silently
   diverging the observer's tree while its reads stayed "fresh". *)

let observer_cfg ~seed =
  { (Ensemble.default_config ~servers:3) with
    Ensemble.observers = 1;
    seed;
    election_timeout = 0.3;
    request_timeout = 0.2;
    retry_backoff = 0.02;
    retry_backoff_cap = 0.05;
    session_timeout = 30.;
    stale_read_after = 0.5;
    serve_stale_reads = false }

let test_partitioned_observer_reconverges () =
  let engine = Engine.create () in
  (* no freshness gate here: an idle observer hears nothing between
     writes, and this test reads well after the last commit — the gate
     has its own history-checked test below *)
  let ensemble =
    Ensemble.start engine
      { (observer_cfg ~seed:11L) with
        Ensemble.stale_read_after = infinity;
        serve_stale_reads = true }
  in
  let observer = 3 in
  Process.spawn engine (fun () ->
      let writer = Ensemble.session ensemble ~server:0 () in
      ignore (zk_ok "seed" (writer.Zk_client.create "/a" ~data:"v0"));
      Process.sleep 0.5;
      (* the observer is cut off while three writes commit *)
      Ensemble.partition ensemble [ [ observer ] ];
      ignore (zk_ok "b" (writer.Zk_client.create "/b" ~data:""));
      ignore (zk_ok "c" (writer.Zk_client.create "/c" ~data:""));
      ignore (zk_ok "set a" (writer.Zk_client.set "/a" ~data:"v1"));
      Process.sleep 0.5;
      Ensemble.heal ensemble;
      (* the next Inform carries a zxid gap: the observer must fetch
         the missed committed entries instead of skipping them *)
      ignore (zk_ok "d" (writer.Zk_client.create "/d" ~data:""));
      Process.sleep 1.0;
      let leader =
        match Ensemble.leader_id ensemble with
        | Some id -> id
        | None -> Alcotest.fail "no leader"
      in
      check_bool "observer tree reconverged with the leader's" true
        (Ztree.equal_state
           (Ensemble.tree_of ensemble observer)
           (Ensemble.tree_of ensemble leader));
      (* and a session homed on the observer reads repaired state *)
      let reader = Ensemble.session ensemble ~server:observer () in
      check_string "observer serves the write it was partitioned through" "v1"
        (get_data "observer read" reader "/a"));
  Engine.run engine

let test_partitioned_observer_history_checked () =
  (* the same scenario under the linearizability oracle: writes against
     a register while its observer-homed readers are partitioned away
     and healed; the freshness gate must refuse stale observer reads
     rather than serve diverged state as fresh *)
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (observer_cfg ~seed:23L) in
  let history = Zk.History.create engine in
  let observer = 3 in
  let attempts = ref 0 and completed = ref 0 in
  let client ~id ~server ops =
    Process.spawn engine (fun () ->
        let h =
          Zk.History.wrap history ~client:id
            (Ensemble.session ensemble ~server ())
        in
        List.iter
          (fun op ->
            incr attempts;
            (op h : unit);
            incr completed;
            Process.sleep 0.15)
          ops)
  in
  let w data h =
    match h.Zk_client.exists "/r" with
    | Ok None -> ignore (h.Zk_client.create "/r" ~data)
    | Ok (Some _) | Error _ -> ignore (h.Zk_client.set "/r" ~data)
  in
  let r h = ignore (h.Zk_client.get "/r") in
  client ~id:0 ~server:0 [ w "a"; w "b"; w "c"; w "d"; w "e"; w "f" ];
  client ~id:1 ~server:observer [ r; r; r; r; r; r ];
  Process.spawn engine (fun () ->
      Process.sleep 0.25;
      Ensemble.partition ensemble [ [ observer ] ];
      Process.sleep 0.6;
      Ensemble.heal ensemble);
  Engine.run engine;
  check_int "every client op completed or timed out cleanly" !attempts !completed;
  let violations = Zk.History.check history in
  List.iter
    (fun (v : Zk.History.violation) ->
      Printf.printf "OBSERVER VIOLATION [%s] %s: %s\n%!" v.Zk.History.v_kind
        v.Zk.History.v_path v.Zk.History.v_detail)
    violations;
  check_int "observer reads are linearizable across the partition" 0
    (List.length violations);
  check_bool "the history actually recorded both clients" true
    (Zk.History.recorded history >= 10)

(* {2 Lease-mode ≡ watch-mode (qcheck)}

   Fault-free, both coherence protocols deliver invalidations
   synchronously at commit time, so a lease-mode cache and a watch-mode
   cache over the same service must return identical results for every
   read — across random writes by a third session and clock advances
   that expire leases mid-sequence. *)

type step =
  | St_create of string * string
  | St_set of string * string
  | St_delete of string
  | St_get of string
  | St_children of string
  | St_readdir of string
  | St_advance of float

let gen_path =
  QCheck2.Gen.(
    let dir = oneofl [ "/a"; "/b" ] in
    oneof [ dir; map2 (fun d leaf -> d ^ "/" ^ leaf) dir (oneofl [ "x"; "y"; "z" ]) ])

let gen_step =
  QCheck2.Gen.(
    oneof
      [ map2 (fun p d -> St_create (p, d)) gen_path (string_size (return 2));
        map2 (fun p d -> St_set (p, d)) gen_path (string_size (return 2));
        map (fun p -> St_delete p) gen_path;
        map (fun p -> St_get p) gen_path;
        map (fun p -> St_children p) gen_path;
        map (fun p -> St_readdir p) gen_path;
        map (fun dt -> St_advance dt) (float_range 0.5 4.0) ])

let show_step = function
  | St_create (p, d) -> Printf.sprintf "create %s %S" p d
  | St_set (p, d) -> Printf.sprintf "set %s %S" p d
  | St_delete p -> "delete " ^ p
  | St_get p -> "get " ^ p
  | St_children p -> "children " ^ p
  | St_readdir p -> "readdir " ^ p
  | St_advance dt -> Printf.sprintf "advance %.2f" dt

let read_repr label = function
  | Ok s -> label ^ ":" ^ s
  | Error e -> label ^ ":" ^ Zerror.to_string e

let prop_lease_equals_watch =
  QCheck2.Test.make
    ~name:"lease-mode cache ≡ watch-mode cache over random interleavings"
    ~count:300
    ~print:(fun steps -> String.concat "; " (List.map show_step steps))
    QCheck2.Gen.(list_size (int_range 1 40) gen_step)
    (fun steps ->
      let now = ref 0.0 in
      let service = Zk_local.create ~clock:(fun () -> !now) ~lease_ttl:3.0 () in
      let writer = Zk_local.session service in
      let watch_cache = Cache.wrap (Zk_local.session service) in
      let lease_cache =
        Cache.wrap ~coherence:Cache.Leases ~now:(fun () -> !now)
          (Zk_local.session service)
      in
      let wh = Cache.handle watch_cache and lh = Cache.handle lease_cache in
      let read_both label f =
        let a = f wh and b = f lh in
        if a <> b then
          QCheck2.Test.fail_reportf "divergence on %s: watch=%s lease=%s" label a b
      in
      List.iter
        (fun step ->
          match step with
          | St_create (p, d) -> ignore (writer.Zk_client.create p ~data:d)
          | St_set (p, d) -> ignore (writer.Zk_client.set p ~data:d)
          | St_delete p -> ignore (writer.Zk_client.delete p)
          | St_advance dt -> now := !now +. dt
          | St_get p ->
            read_both (show_step step) (fun h ->
                read_repr "get"
                  (Result.map (fun (d, _) -> d) (h.Zk_client.get p)))
          | St_children p ->
            read_both (show_step step) (fun h ->
                read_repr "children"
                  (Result.map (String.concat ",") (h.Zk_client.children p)))
          | St_readdir p ->
            read_both (show_step step) (fun h ->
                read_repr "readdir"
                  (Result.map
                     (fun entries ->
                       String.concat ","
                         (List.map
                            (fun (n, d, _) -> n ^ "=" ^ d)
                            entries))
                     (h.Zk_client.children_with_data p))))
        steps;
      true)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "cache-coherence"
    [ ( "refill-fence",
        [ Alcotest.test_case "stale re-fill race is fenced" `Quick
            test_stale_refill_race_fenced;
          Alcotest.test_case "stale bulk re-fill race is fenced" `Quick
            test_stale_bulk_refill_race_fenced ] );
      ( "watch-lifecycle",
        [ Alcotest.test_case "failed read releases its watch" `Quick
            test_failed_read_releases_watch;
          Alcotest.test_case "eviction bounds the server watch table" `Quick
            test_eviction_keeps_server_watch_table_bounded ] );
      ( "leases",
        [ Alcotest.test_case "server state is per working directory" `Quick
            test_lease_mode_server_state_is_per_directory;
          Alcotest.test_case "revocation channel" `Quick test_lease_revocation_channel;
          Alcotest.test_case "expiry on the sim clock" `Quick
            test_lease_expiry_on_sim_clock;
          Alcotest.test_case "staleness bounded by the TTL" `Quick
            test_lease_staleness_bounded_by_ttl ] );
      ( "observers",
        [ Alcotest.test_case "partitioned observer reconverges" `Quick
            test_partitioned_observer_reconverges;
          Alcotest.test_case "observer reads stay linearizable" `Quick
            test_partitioned_observer_history_checked ] );
      ("equivalence", [ qc prop_lease_equals_watch ]) ]
