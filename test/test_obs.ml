(* The obs layer's contract: get-or-create metric registry with one
   honest JSON snapshot path, and span tracing that is default-off and
   — when on — pure accumulator bookkeeping, so a traced run replays the
   exact same simulated timeline as an untraced one. *)

module Metrics = Obs.Metrics
module Trace = Obs.Trace
module Engine = Simkit.Engine
module Process = Simkit.Process
module Stat = Simkit.Stat

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  n = 0 || scan 0

(* {2 Metrics registry} *)

let test_get_or_create () =
  let m = Metrics.create () in
  let c = Metrics.counter m "ops" in
  Stat.Counter.incr c;
  (* same name, same instrument *)
  Stat.Counter.incr (Metrics.counter m "ops");
  check_int "one instrument under the name" 2
    (Stat.Counter.value (Metrics.counter m "ops"));
  Alcotest.check_raises "kind mismatch rejected"
    (Invalid_argument "Metrics: \"ops\" already registered as a counter")
    (fun () -> ignore (Metrics.summary m "ops"))

let test_names_in_registration_order () =
  let m = Metrics.create () in
  ignore (Metrics.summary m "b");
  ignore (Metrics.counter m "a");
  ignore (Metrics.histogram m "c");
  Alcotest.(check (list string)) "registration order" [ "b"; "a"; "c" ]
    (Metrics.names m)

let test_json_snapshot () =
  let m = Metrics.create () in
  Stat.Counter.add (Metrics.counter m "ops") 7;
  Metrics.Gauge.set (Metrics.gauge m "depth") 3.5;
  let s = Metrics.summary m "lat.sum" in
  Stat.Summary.add s 0.25;
  Stat.Summary.add s 0.75;
  let h = Metrics.histogram m "lat" in
  Stat.Histogram.add h 0.25;
  ignore (Metrics.summary m "empty");
  let json = Metrics.to_json m in
  check_bool "counter value present" true
    (String.length json > 0
    && contains json "\"value\": 7");
  check_bool "no NaN anywhere" true (not (contains json "nan"));
  check_bool "summary mean present" true
    (contains json "\"mean\": 0.5");
  check_bool "empty summary omits mean" true
    (contains json "\"empty\": {\"kind\": \"summary\", \"count\": 0}")

let test_json_rejects_non_finite () =
  let m = Metrics.create () in
  Metrics.Gauge.set (Metrics.gauge m "bad") Float.nan;
  check_bool "non-finite raises" true
    (try
       ignore (Metrics.to_json m);
       false
     with Invalid_argument _ -> true)

(* {2 Trace basics} *)

let test_trace_off_by_default () =
  let t = Trace.create () in
  check_bool "disabled on creation" false (Trace.enabled t);
  Trace.record_span t "x" 1.0;
  check_int "nothing recorded while off" 0 (Trace.span_count t "x");
  Trace.enable t;
  Trace.record_span t "x" 1.0;
  check_int "recorded once on" 1 (Trace.span_count t "x");
  Alcotest.check_raises "null trace cannot be enabled"
    (Invalid_argument "Trace.enable: the null trace stays off") (fun () ->
      Trace.enable Trace.null)

let test_wspan_allocation_gate () =
  let t = Trace.create () in
  check_bool "disabled trace hands out the shared dummy" true
    (not (Trace.is_real (Trace.wspan t ~now:1.0)));
  Trace.enable t;
  check_bool "enabled trace allocates a real span" true
    (Trace.is_real (Trace.wspan t ~now:1.0))

let test_finish_write_rejects_half_stamped () =
  let t = Trace.create () in
  Trace.enable t;
  let w = Trace.wspan t ~now:1.0 in
  (* only w_sent stamped: a write that timed out mid-flight *)
  Trace.finish_write t ~op:"create" w ~now:2.0;
  check_int "half-stamped span dropped" 0 (Trace.span_count t "zk.create.total")

(* {2 End-to-end: ensemble + client, traced vs untraced} *)

let workload trace =
  let engine = Engine.create () in
  let cfg =
    { (Zk.Ensemble.default_config ~servers:5) with Zk.Ensemble.max_batch = 8 }
  in
  let ensemble = Zk.Ensemble.start ?trace engine cfg in
  let final = ref 0. in
  for proc = 0 to 3 do
    Process.spawn engine (fun () ->
        let s = Zk.Ensemble.session ensemble () in
        for i = 0 to 24 do
          (match s.Zk.Zk_client.create (Printf.sprintf "/n%d_%d" proc i) ~data:"x" with
           | Ok _ -> ()
           | Error e -> failwith (Zk.Zerror.to_string e));
          ignore (s.Zk.Zk_client.get (Printf.sprintf "/n%d_%d" proc i));
          match s.Zk.Zk_client.delete (Printf.sprintf "/n%d_%d" proc i) with
          | Ok _ -> ()
          | Error e -> failwith (Zk.Zerror.to_string e)
        done;
        final := Engine.now engine)
  done;
  Engine.run engine;
  !final

let test_tracing_preserves_determinism () =
  let untraced = workload None in
  let trace = Trace.create () in
  Trace.enable trace;
  let traced = workload (Some trace) in
  check_bool "final clocks bit-identical"
    true (untraced = traced);
  check_int "creates all traced" 100 (Trace.span_count trace "zk.create.total");
  check_int "deletes all traced" 100 (Trace.span_count trace "zk.delete.total");
  check_int "reads all traced" 100 (Trace.span_count trace "zk.read.total")

let test_phase_telescoping () =
  let trace = Trace.create () in
  Trace.enable trace;
  ignore (workload (Some trace));
  List.iter
    (fun op ->
      let base = "zk." ^ op in
      let mean name =
        match Trace.span_mean trace name with
        | Some m -> m
        | None -> Alcotest.fail (name ^ ": no samples")
      in
      let total = mean (base ^ ".total") in
      let sum =
        List.fold_left
          (fun acc p -> acc +. mean (base ^ "." ^ p))
          0. Trace.phases
      in
      (* the stamps tile the write's timeline: the phases must sum to the
         measured op latency well within the 5% acceptance bound *)
      check_bool
        (Printf.sprintf "%s: phase sum %.9g within 5%% of total %.9g" op sum total)
        true
        (Float.abs (sum -. total) <= 0.05 *. total);
      check_bool (op ^ ": every phase nonnegative") true
        (List.for_all (fun p -> mean (base ^ "." ^ p) >= 0.) Trace.phases))
    [ "create"; "delete" ];
  (* group commit visible in the leader gauges *)
  let batch =
    match Metrics.summary_opt (Trace.metrics trace) "zk.leader.batch_size" with
    | Some s -> s
    | None -> Alcotest.fail "no batch-size gauge"
  in
  check_bool "batches observed" true (Stat.Summary.count batch > 0);
  check_bool "some batching happened (max_batch=8, 4 writers)" true
    (match Stat.Summary.max batch with Some m -> m >= 1. | None -> false)

let () =
  Alcotest.run "obs"
    [ ( "metrics",
        [ Alcotest.test_case "get-or-create" `Quick test_get_or_create;
          Alcotest.test_case "names ordered" `Quick test_names_in_registration_order;
          Alcotest.test_case "json snapshot" `Quick test_json_snapshot;
          Alcotest.test_case "json rejects non-finite" `Quick
            test_json_rejects_non_finite ] );
      ( "trace",
        [ Alcotest.test_case "off by default" `Quick test_trace_off_by_default;
          Alcotest.test_case "wspan allocation gate" `Quick test_wspan_allocation_gate;
          Alcotest.test_case "half-stamped dropped" `Quick
            test_finish_write_rejects_half_stamped ] );
      ( "end-to-end",
        [ Alcotest.test_case "tracing preserves determinism" `Quick
            test_tracing_preserves_determinism;
          Alcotest.test_case "phases telescope to op latency" `Quick
            test_phase_telescoping ] ) ]
