(* Tests for the declarative fault-schedule harness: the plan grammar,
   arming a plan against a live ensemble, and the headline failure-path
   run — mdtest at 64 processes with the leader (and two followers)
   crashed mid file-create must complete error-free, with every retried
   write answered exactly once and the znode population accounted for. *)

module Engine = Simkit.Engine
module Ensemble = Zk.Ensemble
module Faultplan = Faults.Faultplan
module Systems = Scenarios.Systems

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let plan_of_string text =
  match Faultplan.parse text with
  | Ok plan -> plan
  | Error msg -> Alcotest.failf "parse %S: %s" text msg

(* {2 Grammar} *)

let test_parse_roundtrip () =
  let text =
    "crash-leader@file-create+0.05;crash=1@0.25;restart=1@dir-stat+0.2;\
     restart-all@file-create+1.5"
  in
  let plan = plan_of_string text in
  check_int "four events" 4 (List.length plan);
  check_string "to_string inverts parse" text (Faultplan.to_string plan);
  match plan with
  | { Faultplan.action = Faultplan.Crash_leader;
      anchor = Faultplan.After_phase ("file-create", offset) }
    :: { Faultplan.action = Faultplan.Crash 1; anchor = Faultplan.At t } :: _ ->
    check_bool "phase offset parsed" true (offset = 0.05);
    check_bool "absolute time parsed" true (t = 0.25)
  | _ -> Alcotest.fail "events decoded in the wrong shape"

let test_parse_bare_phase_anchor () =
  match plan_of_string "crash=0@file-remove" with
  | [ { Faultplan.action = Faultplan.Crash 0;
        anchor = Faultplan.After_phase ("file-remove", 0.) } ] -> ()
  | _ -> Alcotest.fail "bare phase anchor should mean offset 0"

let test_parse_rejects_malformed () =
  List.iter
    (fun text ->
      match Faultplan.parse text with
      | Ok _ -> Alcotest.failf "parse %S should fail" text
      | Error _ -> ())
    [ "boom@1"; "crash=x@1"; "crash=1"; "crash=1@-2"; "crash=-1@1";
      "crash=1@dir-create+x"; "crash=1@+" ]

(* {2 The sharded grammar extension} *)

let test_parse_shard_roundtrip () =
  let text =
    "crash=2/1@0.25;restart=2/1@dir-stat+0.2;\
     crash-leader@shard=3@file-create+0.05"
  in
  let plan = plan_of_string text in
  check_string "to_string inverts parse" text (Faultplan.to_string plan);
  match plan with
  | { Faultplan.action = Faultplan.Crash_on (2, 1); anchor = Faultplan.At t }
    :: { Faultplan.action = Faultplan.Restart_on (2, 1); _ }
    :: [ { Faultplan.action = Faultplan.Crash_leader_of 3;
           anchor = Faultplan.After_phase ("file-create", offset) } ] ->
    check_bool "absolute time parsed" true (t = 0.25);
    check_bool "last @ splits action from anchor" true (offset = 0.05)
  | _ -> Alcotest.fail "sharded events decoded in the wrong shape"

let test_parse_unqualified_plans_unchanged () =
  (* every pre-sharding plan keeps its meaning: bare ids stay [Crash]/
     [Restart] (shard 0 at arm time), not [Crash_on] *)
  match plan_of_string "crash-leader@file-create+0.05;crash=1@0.25;restart-all@1.5" with
  | [ { Faultplan.action = Faultplan.Crash_leader; _ };
      { Faultplan.action = Faultplan.Crash 1; _ };
      { Faultplan.action = Faultplan.Restart_all_down; _ } ] -> ()
  | _ -> Alcotest.fail "unqualified plan decoded differently"

let test_parse_shard_rejects_malformed () =
  List.iter
    (fun text ->
      match Faultplan.parse text with
      | Ok _ -> Alcotest.failf "parse %S should fail" text
      | Error _ -> ())
    [ "crash=1/@1"; "crash=/2@1"; "crash=1/2/3@1"; "crash=1/-2@1";
      "crash=-1/2@1"; "crash-leader@shard=@1"; "crash-leader@shard=x@dir-create";
      "crash-leader@shard=1/2@1" ]

(* {2 The storage-fault grammar extension} *)

let test_parse_storage_roundtrip () =
  let text =
    "torn-tail=2@file-create+0.6;corrupt-wal=1:0.05@0.8;corrupt-snap=3@1;\
     disk-stall=0:0.2@file-create+1.3;fsync-delay+=4:0.0002@0.05;\
     torn-tail=1/2@2;corrupt-wal=0/1:0.1@2.5;corrupt-snap=2/3@dir-stat+0;\
     disk-stall=2/0:0.25@3;fsync-delay+=3/1:0.001@3.5"
  in
  let plan = plan_of_string text in
  check_int "ten events" 10 (List.length plan);
  check_string "to_string inverts parse" text (Faultplan.to_string plan);
  match plan with
  | { Faultplan.action = Faultplan.Torn_tail (None, 2);
      anchor = Faultplan.After_phase ("file-create", _) }
    :: { Faultplan.action = Faultplan.Corrupt_wal (None, 1, fraction); _ }
    :: { Faultplan.action = Faultplan.Corrupt_snap (None, 3); _ }
    :: { Faultplan.action = Faultplan.Disk_stall (None, 0, stall); _ }
    :: { Faultplan.action = Faultplan.Fsync_delay (None, 4, extra); _ }
    :: { Faultplan.action = Faultplan.Torn_tail (Some 1, 2); _ }
    :: { Faultplan.action = Faultplan.Corrupt_wal (Some 0, 1, _); _ }
    :: { Faultplan.action = Faultplan.Corrupt_snap (Some 2, 3);
         anchor = Faultplan.After_phase ("dir-stat", 0.) }
    :: { Faultplan.action = Faultplan.Disk_stall (Some 2, 0, _); _ }
    :: [ { Faultplan.action = Faultplan.Fsync_delay (Some 3, 1, _); _ } ] ->
    check_bool "bit-rot fraction parsed" true (fraction = 0.05);
    check_bool "stall duration parsed" true (stall = 0.2);
    check_bool "fail-slow surcharge parsed" true (extra = 0.0002)
  | _ -> Alcotest.fail "storage events decoded in the wrong shape"

let test_parse_storage_rejects_malformed () =
  List.iter
    (fun text ->
      match Faultplan.parse text with
      | Ok _ -> Alcotest.failf "parse %S should fail" text
      | Error _ -> ())
    [ "torn-tail=@1"; "torn-tail=x@1"; "torn-tail=-1@1";
      "corrupt-wal=1@1" (* missing :fraction *); "corrupt-wal=1:x@1";
      "corrupt-wal=1:1.5@1" (* fraction > 1 *); "corrupt-wal=:0.5@1";
      "corrupt-snap=1:0.5@1" (* takes no value *); "corrupt-snap=@1";
      "disk-stall=1@1" (* missing :duration *); "disk-stall=1:x@1";
      "disk-stall=1:-0.5@1"; "fsync-delay+=1@1"; "fsync-delay+=1:-0.001@1";
      "torn-tail=1/2/3@1" ]

(* A storage action armed through the plan must reach the named member's
   WAL: tear the follower's log tail, power-cycle it, and the recovery
   truncation counter has to show the lost record (the live leader then
   diff-syncs the gap, so the replica converges anyway). *)
let test_arm_storage_action_reaches_the_wal () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let armed =
    Faultplan.arm engine ensemble
      (plan_of_string "torn-tail=2@0.3;crash=2@0.31;restart=2@0.5")
  in
  Simkit.Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      for i = 1 to 8 do
        match s.Zk.Zk_client.create (Printf.sprintf "/t%d" i) ~data:"x" with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "create /t%d: %s" i (Zk.Zerror.to_string e)
      done);
  Engine.run engine;
  check_int "all three events fired" 3 (Faultplan.fired armed);
  check_bool "torn record counted by recovery" true
    (Ensemble.wal_truncated ensemble >= 1);
  check_bool "replica converges after truncation" true
    (Zk.Ztree.equal_state (Ensemble.tree_of ensemble 2)
       (Ensemble.tree_of ensemble 0))

(* {2 Property: parse inverts to_string on generated plans}

   Floats are drawn from literal grids (values "%g" prints exactly as
   written), so structural equality of the re-parsed plan is exact —
   the property exercises the whole grammar, including the network
   actions and shard qualifiers, not float printing. *)

let plan_gen =
  let open QCheck2.Gen in
  let shard = oneof [ return None; map Option.some (int_range 0 3) ] in
  let probability = oneofl [ 0.05; 0.1; 0.25; 0.5; 0.75; 0.9; 1. ] in
  let duration = oneofl [ 0.001; 0.005; 0.05; 0.25; 1.5 ] in
  let groups =
    list_size (int_range 1 3) (list_size (int_range 1 2) (int_range 0 4))
  in
  let action =
    oneof
      [ map (fun id -> Faultplan.Crash id) (int_range 0 4);
        map (fun id -> Faultplan.Restart id) (int_range 0 4);
        return Faultplan.Crash_leader;
        return Faultplan.Restart_all_down;
        map2 (fun s id -> Faultplan.Crash_on (s, id)) (int_range 0 3)
          (int_range 0 4);
        map2 (fun s id -> Faultplan.Restart_on (s, id)) (int_range 0 3)
          (int_range 0 4);
        map (fun s -> Faultplan.Crash_leader_of s) (int_range 0 3);
        map2 (fun sh gs -> Faultplan.Partition (sh, gs)) shard groups;
        map (fun sh -> Faultplan.Heal sh) shard;
        map2 (fun sh p -> Faultplan.Drop (sh, p)) shard probability;
        map2 (fun sh d -> Faultplan.Delay (sh, d)) shard duration;
        map2 (fun sh p -> Faultplan.Duplicate (sh, p)) shard probability;
        map3
          (fun sh p w -> Faultplan.Reorder (sh, p, w))
          shard probability duration;
        map2 (fun sh id -> Faultplan.Torn_tail (sh, id)) shard (int_range 0 4);
        map3
          (fun sh id p -> Faultplan.Corrupt_wal (sh, id, p))
          shard (int_range 0 4) probability;
        map2 (fun sh id -> Faultplan.Corrupt_snap (sh, id)) shard (int_range 0 4);
        map3
          (fun sh id d -> Faultplan.Disk_stall (sh, id, d))
          shard (int_range 0 4) duration;
        map3
          (fun sh id d -> Faultplan.Fsync_delay (sh, id, d))
          shard (int_range 0 4) duration ]
  in
  let anchor =
    oneof
      [ map (fun t -> Faultplan.At t) (oneofl [ 0.; 0.5; 1.; 2.5; 12.25 ]);
        map2
          (fun name off -> Faultplan.After_phase (name, off))
          (oneofl [ "file-create"; "dir-stat"; "tree-walk"; "rm" ])
          (oneofl [ 0.; 0.05; 0.25; 1.5 ]) ]
  in
  let event = map2 (fun action anchor -> { Faultplan.action; anchor }) action anchor in
  list_size (int_range 1 8) event

let prop_roundtrip =
  QCheck2.Test.make ~name:"parse inverts to_string on random plans" ~count:500
    plan_gen (fun plan ->
      let text = Faultplan.to_string plan in
      match Faultplan.parse text with
      | Ok plan' -> plan' = plan
      | Error msg -> QCheck2.Test.fail_reportf "parse %S: %s" text msg)

let prop_chaos_roundtrip =
  QCheck2.Test.make ~name:"chaos plans survive the textual round trip" ~count:100
    QCheck2.Gen.(pair int64 (int_range 1 4))
    (fun (seed, shards) ->
      let plan =
        Faultplan.chaos ~seed ~servers:3 ~shards ~start:1. ~heal_at:6.
          ~events:8 ()
      in
      match Faultplan.parse (Faultplan.to_string plan) with
      | Ok plan' -> Faultplan.to_string plan' = Faultplan.to_string plan
      | Error msg ->
        QCheck2.Test.fail_reportf "parse %S: %s" (Faultplan.to_string plan) msg)

let test_arm_shards_targets_the_right_shard () =
  let engine = Engine.create () in
  let router =
    Zk.Shard_router.start engine ~shards:2 (Ensemble.default_config ~servers:3)
  in
  let ensembles = Zk.Shard_router.ensembles router in
  let armed =
    Faultplan.arm_shards engine ensembles
      (plan_of_string "crash=1/2@0.01;crash=0@0.01;restart-all@boot+0.01")
  in
  Engine.schedule engine ~delay:0.02 (fun () ->
      let alive i = Ensemble.alive_ids ensembles.(i) in
      check_bool "server 2 of shard 1 down" false (List.mem 2 (alive 1));
      check_bool "server 2 of shard 0 untouched" true (List.mem 2 (alive 0));
      check_bool "unqualified crash hit shard 0" false (List.mem 0 (alive 0));
      check_bool "server 0 of shard 1 untouched" true (List.mem 0 (alive 1));
      Faultplan.notify_phase armed "boot");
  Engine.run engine;
  check_int "all three events fired" 3 (Faultplan.fired armed);
  Array.iteri
    (fun i e ->
      check_int (Printf.sprintf "shard %d fully restarted" i) 3
        (List.length (Ensemble.alive_ids e)))
    ensembles

let test_arm_shards_rejects_bad_deployments () =
  let engine = Engine.create () in
  (match Faultplan.arm_shards engine [||] (plan_of_string "crash=0@1") with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "empty deployment should be rejected");
  (* a shard index beyond the deployment is a plan/deployment mismatch
     and must fail loudly at fire time, not silently no-op *)
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  ignore (Faultplan.arm engine ensemble (plan_of_string "crash=3/0@0.01"));
  match Engine.run engine with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "out-of-range shard should raise when it fires"

(* {2 Arming against a live ensemble} *)

let test_arm_executes_timed_and_phase_events () =
  let engine = Engine.create () in
  let ensemble = Ensemble.start engine (Ensemble.default_config ~servers:3) in
  let armed =
    Faultplan.arm engine ensemble (plan_of_string "crash=2@0.01;restart=2@boot+0.05")
  in
  Engine.schedule engine ~delay:0.02 (fun () ->
      check_bool "timed crash fired" true
        (not (List.mem 2 (Ensemble.alive_ids ensemble)));
      check_int "phase-anchored event still held" 1 (Faultplan.fired armed);
      Faultplan.notify_phase armed "boot");
  Engine.run engine;
  check_int "both events fired" 2 (Faultplan.fired armed);
  check_bool "server restarted by the phase event" true
    (List.mem 2 (Ensemble.alive_ids ensemble))

(* {2 The acceptance run: mdtest under leader crash and quorum loss} *)

let test_mdtest_64_procs_survives_leader_crash () =
  (* leader down 20 ms into file-create, then two followers: the
     ensemble sits below quorum for ~1.1 s — longer than the request
     timeout, so clients must retry writes that are still pending, and
     the dedup table has to answer them without a second apply *)
  let plan =
    plan_of_string
      "crash-leader@file-create+0.02;crash=1@file-create+0.05;\
       crash=2@file-create+0.08;restart-all@file-create+1.2"
  in
  let spec =
    { Systems.zk_servers = 5; backends = 2; backend_kind = Systems.Lustre }
  in
  let run =
    Systems.mdtest_faulted ~dirs_per_proc:40 ~files_per_proc:40
      ~config_adjust:(fun c ->
        { c with Ensemble.election_timeout = 0.2; request_timeout = 0.3 })
      ~spec ~procs:64 ~plan ()
  in
  check_int "mdtest completes error-free" 0
    run.Systems.results.Mdtest.Runner.errors;
  check_int "all four fault events fired" 4 run.Systems.faults_fired;
  check_bool "retried writes answered from the dedup table" true
    (run.Systems.dedup_hits > 0);
  check_int "znode population exact: nothing lost, nothing applied twice"
    run.Systems.expected_znodes_after_create run.Systems.znodes_after_create;
  check_bool "every create committed" true
    (run.Systems.writes_committed >= 64 * 40)

let () =
  Alcotest.run "faults"
    [ ( "grammar",
        [ Alcotest.test_case "parse/to_string roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "bare phase anchor" `Quick test_parse_bare_phase_anchor;
          Alcotest.test_case "rejects malformed plans" `Quick
            test_parse_rejects_malformed;
          Alcotest.test_case "sharded roundtrip" `Quick test_parse_shard_roundtrip;
          Alcotest.test_case "unqualified plans unchanged" `Quick
            test_parse_unqualified_plans_unchanged;
          Alcotest.test_case "rejects malformed sharded plans" `Quick
            test_parse_shard_rejects_malformed;
          Alcotest.test_case "storage-fault roundtrip" `Quick
            test_parse_storage_roundtrip;
          Alcotest.test_case "rejects malformed storage plans" `Quick
            test_parse_storage_rejects_malformed;
          QCheck_alcotest.to_alcotest prop_roundtrip;
          QCheck_alcotest.to_alcotest prop_chaos_roundtrip ] );
      ( "arming",
        [ Alcotest.test_case "timed and phase-anchored events" `Quick
            test_arm_executes_timed_and_phase_events;
          Alcotest.test_case "shard-qualified events target their shard" `Quick
            test_arm_shards_targets_the_right_shard;
          Alcotest.test_case "rejects bad deployments" `Quick
            test_arm_shards_rejects_bad_deployments;
          Alcotest.test_case "storage action reaches the member's WAL" `Quick
            test_arm_storage_action_reaches_the_wal ] );
      ( "acceptance",
        [ Alcotest.test_case "mdtest 64 procs survives leader crash" `Slow
            test_mdtest_64_procs_survives_leader_crash ] ) ]
