(* Replication tests for the simulated coordination ensemble: all replicas
   apply the same committed transactions in zxid order, sessions read
   their own writes, and the ensemble survives crashes, elections and
   quorum loss/restore. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Ensemble = Zk.Ensemble
module Ztree = Zk.Ztree
module Zerror = Zk.Zerror
module Zk_client = Zk.Zk_client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Zerror.to_string e)

let make ?(servers = 3) ?(config_adjust = Fun.id) () =
  let engine = Engine.create () in
  let cfg = config_adjust (Ensemble.default_config ~servers) in
  (engine, Ensemble.start engine cfg)

let all_trees_agree ensemble ~servers =
  let reference = Ensemble.tree_of ensemble 0 in
  let rec go i =
    i >= servers
    || (Ztree.equal_state reference (Ensemble.tree_of ensemble i) && go (i + 1))
  in
  go 1

(* {2 Basic replication} *)

let test_write_replicates_to_all () =
  let engine, ensemble = make ~servers:5 () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore (ok_or_fail "create" (s.Zk_client.create "/a" ~data:"payload")));
  Engine.run engine;
  for i = 0 to 4 do
    let data, _ =
      ok_or_fail (Printf.sprintf "server %d" i)
        (Ztree.get (Ensemble.tree_of ensemble i) "/a")
    in
    check_string (Printf.sprintf "replica %d has the data" i) "payload" data
  done

let test_replicas_identical_after_many_writes () =
  let engine, ensemble = make ~servers:5 () in
  for proc = 0 to 7 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for i = 0 to 49 do
          ignore (s.Zk_client.create (Printf.sprintf "/n%d_%d" proc i) ~data:"x")
        done)
  done;
  Engine.run engine;
  check_bool "all five replicas converge to the same state" true
    (all_trees_agree ensemble ~servers:5);
  check_int "all writes committed" 400 (Ensemble.writes_committed ensemble);
  check_int "every replica holds all nodes" 401
    (Ztree.node_count (Ensemble.tree_of ensemble 4))

let test_total_order_observed () =
  (* concurrent conflicting creates: exactly one of the two clients wins,
     on every replica — the Fig. 1 consistency scenario *)
  let engine, ensemble = make ~servers:3 () in
  let outcomes = ref [] in
  for _ = 0 to 1 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        let r = s.Zk_client.create "/contested" ~data:"" in
        outcomes := r :: !outcomes)
  done;
  Engine.run engine;
  let wins =
    List.length (List.filter (function Ok _ -> true | Error _ -> false) !outcomes)
  in
  let losses =
    List.length
      (List.filter (function Error Zerror.ZNODEEXISTS -> true | _ -> false) !outcomes)
  in
  check_int "exactly one winner" 1 wins;
  check_int "the other sees ZNODEEXISTS" 1 losses;
  check_bool "replicas agree" true (all_trees_agree ensemble ~servers:3)

let test_session_reads_own_writes () =
  (* every session, regardless of which follower it is attached to, must
     observe its own completed writes *)
  let engine, ensemble = make ~servers:5 () in
  let failures = ref 0 in
  for proc = 0 to 4 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble ~server:proc () in
        for i = 0 to 19 do
          let path = Printf.sprintf "/rw%d_%d" proc i in
          ignore (ok_or_fail "create" (s.Zk_client.create path ~data:"v"));
          match s.Zk_client.get path with
          | Ok _ -> ()
          | Error _ -> incr failures
        done)
  done;
  Engine.run engine;
  check_int "no stale read of own write" 0 !failures

let test_sequential_across_clients () =
  let engine, ensemble = make ~servers:3 () in
  let paths = ref [] in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore (ok_or_fail "parent" (s.Zk_client.create "/q" ~data:"")));
  Engine.run engine;
  for _ = 0 to 3 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for _ = 0 to 4 do
          let p =
            ok_or_fail "seq" (s.Zk_client.create ~sequential:true "/q/n-" ~data:"")
          in
          paths := p :: !paths
        done)
  done;
  Engine.run engine;
  let sorted = List.sort_uniq compare !paths in
  check_int "20 distinct sequential names" 20 (List.length sorted);
  List.iteri
    (fun i p -> check_string "dense numbering" (Printf.sprintf "/q/n-%010d" i) p)
    sorted

let test_multi_atomicity_replicated () =
  let engine, ensemble = make ~servers:3 () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore
        (ok_or_fail "ok multi"
           (s.Zk_client.multi
              [ Zk_client.create_op "/m" ~data:""; Zk_client.create_op "/m/c" ~data:"" ]));
      match
        s.Zk_client.multi
          [ Zk_client.create_op "/m2" ~data:""; Zk_client.create_op "/gone/c" ~data:"" ]
      with
      | Ok _ -> Alcotest.fail "expected failure"
      | Error e ->
        Alcotest.check
          (Alcotest.testable Zerror.pp Zerror.equal)
          "atomic abort" Zerror.ZNONODE e);
  Engine.run engine;
  for i = 0 to 2 do
    let tree = Ensemble.tree_of ensemble i in
    check_bool "committed multi present" true (Ztree.exists tree "/m/c" <> None);
    check_bool "aborted multi absent everywhere" true (Ztree.exists tree "/m2" = None)
  done

let test_ephemerals_removed_on_close () =
  let engine, ensemble = make ~servers:3 () in
  Process.spawn engine (fun () ->
      let s1 = Ensemble.session ensemble () in
      let s2 = Ensemble.session ensemble () in
      ignore (ok_or_fail "eph" (s1.Zk_client.create ~ephemeral:true "/tmp" ~data:""));
      ignore (ok_or_fail "keep" (s1.Zk_client.create "/keep" ~data:""));
      s1.Zk_client.close ();
      s2.Zk_client.sync ();
      check_bool "ephemeral gone" true (s2.Zk_client.exists "/tmp" = Ok None);
      check_bool "persistent kept" true (s2.Zk_client.exists "/keep" <> Ok None));
  Engine.run engine

(* {2 Read scaling sanity} *)

let test_reads_distributed_across_servers () =
  let engine, ensemble = make ~servers:4 () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore (ok_or_fail "seed" (s.Zk_client.create "/r" ~data:"")));
  Engine.run engine;
  for _ = 0 to 7 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for _ = 0 to 24 do
          ignore (s.Zk_client.get "/r")
        done)
  done;
  Engine.run engine;
  for i = 0 to 3 do
    check_bool (Printf.sprintf "server %d served reads" i) true
      (Ensemble.reads_served ensemble i > 0)
  done

(* {2 Failure injection} *)

let fast_faults cfg =
  { cfg with Ensemble.election_timeout = 0.2; request_timeout = 0.3 }

let test_leader_crash_and_election () =
  let engine, ensemble = make ~servers:5 ~config_adjust:fast_faults () in
  let results = ref [] in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:3 () in
      ignore (ok_or_fail "before crash" (s.Zk_client.create "/pre" ~data:""));
      Process.sleep 1.0;
      results := s.Zk_client.create "/post" ~data:"" :: !results);
  Engine.schedule engine ~delay:0.5 (fun () -> Ensemble.crash ensemble 0);
  Engine.run engine;
  (match Ensemble.leader_id ensemble with
  | Some id -> check_bool "new leader is not the crashed one" true (id <> 0)
  | None -> Alcotest.fail "no leader elected");
  (match !results with
  | [ Ok _ ] -> ()
  | [ Error e ] -> Alcotest.failf "write after election failed: %s" (Zerror.to_string e)
  | _ -> Alcotest.fail "missing result");
  let alive = Ensemble.alive_ids ensemble in
  check_int "four alive" 4 (List.length alive);
  let tree = Ensemble.tree_of ensemble (List.hd alive) in
  check_bool "post-election write present" true (Ztree.exists tree "/post" <> None)

let test_follower_crash_does_not_block_writes () =
  let engine, ensemble = make ~servers:5 ~config_adjust:fast_faults () in
  let done_ok = ref false in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      Process.sleep 0.2;
      ignore (ok_or_fail "write with 2 followers down" (s.Zk_client.create "/w" ~data:""));
      done_ok := true);
  Engine.schedule engine ~delay:0.05 (fun () ->
      Ensemble.crash ensemble 3;
      Ensemble.crash ensemble 4);
  Engine.run engine;
  check_bool "write committed with quorum 3/5" true !done_ok

let test_quorum_loss_blocks_then_recovers () =
  let engine, ensemble = make ~servers:5 ~config_adjust:fast_faults () in
  let during = ref None and after = ref None in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      Process.sleep 0.2;
      during := Some (s.Zk_client.create "/blocked" ~data:"");
      Process.sleep 5.0;
      after := Some (s.Zk_client.create "/recovered" ~data:""));
  Engine.schedule engine ~delay:0.05 (fun () ->
      Ensemble.crash ensemble 2;
      Ensemble.crash ensemble 3;
      Ensemble.crash ensemble 4);
  Engine.schedule engine ~delay:3.0 (fun () ->
      Ensemble.restart ensemble 2;
      Ensemble.restart ensemble 3);
  Engine.run engine;
  (match !during with
  | Some (Error Zerror.ZOPERATIONTIMEOUT) -> ()
  | Some (Ok _) -> Alcotest.fail "write should not commit without quorum"
  | Some (Error e) -> Alcotest.failf "unexpected error: %s" (Zerror.to_string e)
  | None -> Alcotest.fail "no result");
  (match !after with
  | Some (Ok _) -> ()
  | _ -> Alcotest.fail "write after quorum restore should succeed")

let test_restarted_follower_catches_up () =
  let engine, ensemble = make ~servers:3 ~config_adjust:fast_faults () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      for i = 0 to 9 do
        ignore (ok_or_fail "pre" (s.Zk_client.create (Printf.sprintf "/a%d" i) ~data:""))
      done;
      Process.sleep 0.1;
      Ensemble.crash ensemble 2;
      for i = 0 to 9 do
        ignore
          (ok_or_fail "during" (s.Zk_client.create (Printf.sprintf "/b%d" i) ~data:""))
      done;
      Process.sleep 0.1;
      Ensemble.restart ensemble 2);
  Engine.run engine;
  let restarted = Ensemble.tree_of ensemble 2 in
  check_bool "caught up with writes made while down" true
    (Ztree.exists restarted "/b9" <> None);
  check_bool "states equal" true (all_trees_agree ensemble ~servers:3)

let test_writes_during_crash_are_not_lost () =
  let engine, ensemble = make ~servers:5 ~config_adjust:fast_faults () in
  let acknowledged = ref [] in
  for proc = 0 to 3 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for i = 0 to 24 do
          let path = Printf.sprintf "/c%d_%d" proc i in
          match s.Zk_client.create path ~data:"" with
          | Ok _ -> acknowledged := path :: !acknowledged
          | Error _ -> ()
        done)
  done;
  Engine.schedule engine ~delay:0.002 (fun () -> Ensemble.crash ensemble 0);
  Engine.schedule engine ~delay:1.0 (fun () -> Ensemble.restart ensemble 0);
  Engine.run engine;
  check_bool "replicas agree after crash+restart" true
    (all_trees_agree ensemble ~servers:5);
  let tree = Ensemble.tree_of ensemble 1 in
  List.iter
    (fun path ->
      check_bool (Printf.sprintf "acknowledged %s present" path) true
        (Ztree.exists tree path <> None))
    !acknowledged

let test_snapshot_catch_up_after_long_outage () =
  (* the gap exceeds the snapshot-transfer threshold (512), so the
     returning follower is synchronized by whole-snapshot copy *)
  let engine, ensemble = make ~servers:3 ~config_adjust:fast_faults () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      Ensemble.crash ensemble 2;
      for i = 0 to 699 do
        ignore (ok_or_fail "write" (s.Zk_client.create (Printf.sprintf "/big%04d" i) ~data:"x"))
      done;
      Ensemble.restart ensemble 2;
      (* and it keeps applying live traffic afterwards *)
      for i = 0 to 9 do
        ignore (ok_or_fail "tail" (s.Zk_client.create (Printf.sprintf "/tail%d" i) ~data:""))
      done);
  Engine.run engine;
  let restarted = Ensemble.tree_of ensemble 2 in
  check_bool "caught up through snapshot" true (Ztree.exists restarted "/big0699" <> None);
  check_bool "applies live traffic after snapshot" true
    (Ztree.exists restarted "/tail9" <> None);
  check_bool "all replicas agree" true (all_trees_agree ensemble ~servers:3)

let test_single_server_ensemble () =
  let engine, ensemble = make ~servers:1 () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore (ok_or_fail "create" (s.Zk_client.create "/solo" ~data:"x"));
      let data, _ = ok_or_fail "get" (s.Zk_client.get "/solo") in
      check_string "roundtrip" "x" data);
  Engine.run engine;
  check_int "committed" 1 (Ensemble.writes_committed ensemble)

(* {2 Exactly-once writes and watch survival} *)

let test_retried_committed_create_applies_once () =
  (* the origin follower dies after forwarding a create but before the
     commit's reply reaches it: the client times out and retries against
     another server, and the replicated dedup table answers with the
     original result instead of applying the transaction twice *)
  let engine, ensemble = make ~servers:5 ~config_adjust:fast_faults () in
  let result = ref (Error Zerror.ZCONNECTIONLOSS) in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:4 () in
      result := s.Zk_client.create "/once" ~data:"payload");
  (* 200 us: after server 4 forwarded the write to the leader, before
     the commit's Deliver_reply makes it back to server 4 *)
  Engine.schedule engine ~delay:0.0002 (fun () -> Ensemble.crash ensemble 4);
  Engine.run engine;
  (match !result with
  | Ok path -> check_string "retry returns the original result" "/once" path
  | Error e -> Alcotest.failf "retried create failed: %s" (Zerror.to_string e));
  check_int "transaction committed exactly once" 1
    (Ensemble.writes_committed ensemble);
  check_int "retry answered from the dedup table" 1 (Ensemble.dedup_hits ensemble);
  check_int "no duplicate znode" 2 (Ztree.node_count (Ensemble.tree_of ensemble 0))

let test_watches_survive_snapshot_transfer () =
  (* a follower that recovers via whole-snapshot copy must not lose its
     armed watches: nodes changed while it was down fire the missed
     event on reconnect, untouched ones are transplanted into the new
     tree and stay armed for later changes *)
  let engine, ensemble = make ~servers:3 ~config_adjust:fast_faults () in
  let hot_events = ref [] and cold_events = ref [] in
  Process.spawn engine (fun () ->
      let writer = Ensemble.session ensemble ~server:0 () in
      ignore (ok_or_fail "hot" (writer.Zk_client.create "/hot" ~data:"old"));
      ignore (ok_or_fail "cold" (writer.Zk_client.create "/cold" ~data:"keep"));
      let watcher = Ensemble.session ensemble ~server:2 () in
      ignore
        (ok_or_fail "arm hot"
           (watcher.Zk_client.get_watch "/hot" (fun e ->
                hot_events := e :: !hot_events)));
      ignore
        (ok_or_fail "arm cold"
           (watcher.Zk_client.get_watch "/cold" (fun e ->
                cold_events := e :: !cold_events)));
      Ensemble.crash ensemble 2;
      (* enough traffic while it is down to force SNAP (not DIFF) sync *)
      for i = 0 to 599 do
        ignore
          (ok_or_fail "bulk"
             (writer.Zk_client.create (Printf.sprintf "/bulk%03d" i) ~data:""))
      done;
      ignore (ok_or_fail "set hot" (writer.Zk_client.set "/hot" ~data:"new"));
      Ensemble.restart ensemble 2;
      Process.sleep 0.1;
      check_int "missed data change fires on reconnect" 1 (List.length !hot_events);
      (match !hot_events with
      | [ e ] ->
        check_bool "fires as a data-changed event" true
          (e.Ztree.kind = Ztree.Node_data_changed)
      | _ -> ());
      check_int "untouched watch does not fire spuriously" 0
        (List.length !cold_events);
      (* the transplanted watch is still armed in the new tree *)
      ignore (ok_or_fail "set cold" (writer.Zk_client.set "/cold" ~data:"now"));
      Process.sleep 0.1;
      check_int "transplanted watch fires on a later change" 1
        (List.length !cold_events));
  Engine.run engine;
  check_bool "replicas converge" true (all_trees_agree ensemble ~servers:3)

(* {2 Observers} *)

let make_with_observers ~servers ~observers () =
  let engine = Engine.create () in
  let cfg = { (Ensemble.default_config ~servers) with Ensemble.observers } in
  (engine, Ensemble.start engine cfg)

let test_observers_replicate_state () =
  let engine, ensemble = make_with_observers ~servers:3 ~observers:2 () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      for i = 0 to 19 do
        ignore (ok_or_fail "write" (s.Zk_client.create (Printf.sprintf "/o%d" i) ~data:"x"))
      done);
  Engine.run engine;
  (* members 3 and 4 are observers; they hold the full state *)
  for id = 3 to 4 do
    check_bool
      (Printf.sprintf "observer %d applied all writes" id)
      true
      (Ztree.exists (Ensemble.tree_of ensemble id) "/o19" <> None);
    check_bool "observer state equals leader state" true
      (Ztree.equal_state (Ensemble.tree_of ensemble 0) (Ensemble.tree_of ensemble id))
  done

let test_observers_serve_reads () =
  let engine, ensemble = make_with_observers ~servers:3 ~observers:2 () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore (ok_or_fail "seed" (s.Zk_client.create "/r" ~data:"")));
  Engine.run engine;
  (* ten sessions round-robin over 5 members: observers get their share *)
  for _ = 0 to 9 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for _ = 0 to 9 do
          ignore (s.Zk_client.get "/r")
        done)
  done;
  Engine.run engine;
  check_bool "observer 3 served reads" true (Ensemble.reads_served ensemble 3 > 0);
  check_bool "observer 4 served reads" true (Ensemble.reads_served ensemble 4 > 0)

let test_observer_session_reads_own_writes () =
  let engine, ensemble = make_with_observers ~servers:3 ~observers:1 () in
  let failures = ref 0 in
  Process.spawn engine (fun () ->
      (* member 3 is the observer *)
      let s = Ensemble.session ensemble ~server:3 () in
      for i = 0 to 19 do
        let path = Printf.sprintf "/ow%d" i in
        ignore (ok_or_fail "create" (s.Zk_client.create path ~data:""));
        if Result.is_error (s.Zk_client.get path) then incr failures
      done);
  Engine.run engine;
  check_int "own writes visible through the observer" 0 !failures

let test_observers_cheaper_than_voters_for_writes () =
  let write_rate ~servers ~observers =
    let engine, ensemble = make_with_observers ~servers ~observers () in
    let barrier = Simkit.Gate.Barrier.create ~parties:8 () in
    let t0 = ref 0. and t1 = ref 0. in
    for proc = 0 to 7 do
      Process.spawn engine (fun () ->
          let s = Ensemble.session ensemble ~server:0 () in
          Simkit.Gate.Barrier.await barrier;
          if proc = 0 then t0 := Engine.now engine;
          for i = 0 to 99 do
            ignore (s.Zk_client.create (Printf.sprintf "/w%d_%d" proc i) ~data:"")
          done;
          Simkit.Gate.Barrier.await barrier;
          if proc = 0 then t1 := Engine.now engine)
    done;
    Engine.run engine;
    800. /. (!t1 -. !t0)
  in
  let with_observers = write_rate ~servers:3 ~observers:4 in
  let with_voters = write_rate ~servers:7 ~observers:0 in
  check_bool
    (Printf.sprintf "3 voters + 4 observers writes (%.0f/s) > 7 voters (%.0f/s)"
       with_observers with_voters)
    true
    (with_observers > with_voters)

let test_observer_crash_harmless () =
  let engine, ensemble = make_with_observers ~servers:3 ~observers:1 () in
  let ok_write = ref false in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      Ensemble.crash ensemble 3;
      ignore (ok_or_fail "write with observer down" (s.Zk_client.create "/w" ~data:""));
      ok_write := true;
      Process.sleep 0.1;
      Ensemble.restart ensemble 3;
      ignore (ok_or_fail "write after restart" (s.Zk_client.create "/w2" ~data:"")));
  Engine.run engine;
  check_bool "writes unaffected by observer crash" true !ok_write;
  (match Ensemble.leader_id ensemble with
  | Some 0 -> ()
  | _ -> Alcotest.fail "observer crash must not trigger an election");
  (* the restarted observer caught up *)
  check_bool "observer caught up" true
    (Ztree.exists (Ensemble.tree_of ensemble 3) "/w2" <> None)

(* {2 Async API} *)

let test_async_completes_with_callback () =
  let engine, ensemble = make ~servers:3 () in
  let results = ref [] in
  let session = Ensemble.session ensemble () in
  session.Zk_client.multi_async
    [ Zk_client.create_op "/async1" ~data:"x" ]
    (fun r -> results := ("first", r) :: !results);
  session.Zk_client.multi_async
    [ Zk_client.create_op "/async1" ~data:"y" ]
    (fun r -> results := ("dup", r) :: !results);
  Engine.run engine;
  (match List.assoc_opt "first" !results with
  | Some (Ok [ Zk.Txn.Created "/async1" ]) -> ()
  | _ -> Alcotest.fail "first async create should succeed");
  (match List.assoc_opt "dup" !results with
  | Some (Error Zerror.ZNODEEXISTS) -> ()
  | _ -> Alcotest.fail "duplicate async create should fail with ZNODEEXISTS");
  check_bool "write visible" true
    (Ztree.exists (Ensemble.tree_of ensemble 0) "/async1" <> None)

let test_async_pipelining_beats_sync () =
  let run_creates ~async =
    let engine, ensemble = make ~servers:3 () in
    let per_client = 100 in
    let finish = ref 0. in
    if async then begin
      let session = Ensemble.session ensemble () in
      let submitted = ref 0 and completed = ref 0 in
      let rec refill () =
        if !submitted < per_client then begin
          let i = !submitted in
          incr submitted;
          session.Zk_client.multi_async
            [ Zk_client.create_op (Printf.sprintf "/n%d" i) ~data:"" ]
            (fun _ ->
              incr completed;
              if !completed = per_client then finish := Engine.now engine
              else refill ())
        end
      in
      for _ = 1 to 8 do refill () done
    end
    else
      Process.spawn engine (fun () ->
          let session = Ensemble.session ensemble () in
          for i = 0 to per_client - 1 do
            ignore (ok_or_fail "create" (session.Zk_client.create (Printf.sprintf "/n%d" i) ~data:""))
          done;
          finish := Engine.now engine);
    Engine.run engine;
    float_of_int 100 /. !finish
  in
  let sync_rate = run_creates ~async:false in
  let async_rate = run_creates ~async:true in
  check_bool
    (Printf.sprintf "async (%.0f/s) > 2x sync (%.0f/s) for one client" async_rate
       sync_rate)
    true
    (async_rate > 2. *. sync_rate)

let test_async_times_out_without_quorum () =
  let engine, ensemble = make ~servers:3 ~config_adjust:fast_faults () in
  Ensemble.crash ensemble 1;
  Ensemble.crash ensemble 2;
  let result = ref None in
  let session = Ensemble.session ensemble ~server:0 () in
  session.Zk_client.multi_async
    [ Zk_client.create_op "/never" ~data:"" ]
    (fun r -> result := Some r);
  Engine.run engine;
  (match !result with
  | Some (Error Zerror.ZOPERATIONTIMEOUT) -> ()
  | Some (Ok _) -> Alcotest.fail "committed without quorum"
  | Some (Error e) -> Alcotest.failf "unexpected %s" (Zerror.to_string e)
  | None -> Alcotest.fail "callback never fired")

(* {2 Group commit} *)

let with_batch max_batch cfg = { cfg with Ensemble.max_batch }

let test_batch_order_and_error_isolation () =
  (* ten pipelined writes from one session land in the leader's queue
     together, so max_batch = 8 groups them; per-txn replies must still
     arrive in submission order, and the two duplicate creates must fail
     alone without corrupting their batch neighbours *)
  let engine, ensemble =
    make ~servers:5 ~config_adjust:(with_batch 8) ()
  in
  let order = ref [] in
  let session = Ensemble.session ensemble () in
  let results = Array.make 10 None in
  List.iteri
    (fun i path ->
      session.Zk_client.multi_async
        [ Zk_client.create_op path ~data:"" ]
        (fun r ->
          order := i :: !order;
          results.(i) <- Some r))
    [ "/b0"; "/b1"; "/b2"; "/b0"; "/b3"; "/b4"; "/b5"; "/b1"; "/b6"; "/b7" ];
  Engine.run engine;
  check_bool "replies arrive in submission order" true
    (List.rev !order = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]);
  Array.iteri
    (fun i r ->
      match (i, r) with
      | (3 | 7), Some (Error Zerror.ZNODEEXISTS) -> ()
      | (3 | 7), _ -> Alcotest.failf "txn %d: expected ZNODEEXISTS" i
      | _, Some (Ok _) -> ()
      | _, _ -> Alcotest.failf "txn %d: expected success" i)
    results;
  check_bool "replicas agree after mixed batch" true
    (all_trees_agree ensemble ~servers:5);
  let tree = Ensemble.tree_of ensemble 0 in
  List.iter
    (fun p -> check_bool (p ^ " present") true (Ztree.exists tree p <> None))
    [ "/b0"; "/b1"; "/b2"; "/b3"; "/b4"; "/b5"; "/b6"; "/b7" ]

let run_many_writes ~max_batch =
  let engine, ensemble =
    make ~servers:5 ~config_adjust:(with_batch max_batch) ()
  in
  let acked = ref 0 in
  for proc = 0 to 7 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for i = 0 to 49 do
          match s.Zk_client.create (Printf.sprintf "/n%d_%d" proc i) ~data:"x" with
          | Ok _ -> incr acked
          | Error e -> Alcotest.failf "create: %s" (Zerror.to_string e)
        done)
  done;
  Engine.run engine;
  (ensemble, !acked, Engine.now engine)

let test_max_batch_one_reproduces_commit_counts () =
  (* the knob at 1 must be today's pipeline: same acks, same commits *)
  let ensemble, acked, _ = run_many_writes ~max_batch:1 in
  check_int "all 400 writes acked" 400 acked;
  check_int "exactly 400 commits at max_batch=1" 400
    (Ensemble.writes_committed ensemble);
  check_bool "replicas converge" true (all_trees_agree ensemble ~servers:5)

let test_batched_commits_same_writes_faster () =
  let e1, acked1, t1 = run_many_writes ~max_batch:1 in
  let e16, acked16, t16 = run_many_writes ~max_batch:16 in
  check_int "unbatched acks" 400 acked1;
  check_int "batched acks" 400 acked16;
  check_int "batching changes no commit count" (Ensemble.writes_committed e1)
    (Ensemble.writes_committed e16);
  check_bool "batched replicas converge" true (all_trees_agree e16 ~servers:5);
  check_bool "batched and unbatched end states equal" true
    (Ztree.equal_state (Ensemble.tree_of e1 0) (Ensemble.tree_of e16 0));
  check_bool
    (Printf.sprintf "group commit is faster (%.4fs vs %.4fs virtual)" t16 t1)
    true (t16 < t1)

let test_leader_crash_mid_batch_loses_no_committed_write () =
  (* like the unbatched no-loss test, but with batches in flight when the
     leader dies: every acknowledged write must survive the election *)
  let engine, ensemble =
    make ~servers:5
      ~config_adjust:(fun cfg -> fast_faults (with_batch 8 cfg))
      ()
  in
  let acknowledged = ref [] in
  for proc = 0 to 3 do
    Process.spawn engine (fun () ->
        let s = Ensemble.session ensemble () in
        for i = 0 to 24 do
          let path = Printf.sprintf "/c%d_%d" proc i in
          match s.Zk_client.create path ~data:"" with
          | Ok _ -> acknowledged := path :: !acknowledged
          | Error _ -> ()
        done)
  done;
  Engine.schedule engine ~delay:0.002 (fun () -> Ensemble.crash ensemble 0);
  Engine.schedule engine ~delay:1.0 (fun () -> Ensemble.restart ensemble 0);
  Engine.run engine;
  check_bool "some writes were acknowledged" true (!acknowledged <> []);
  check_bool "replicas agree after crash mid-batch" true
    (all_trees_agree ensemble ~servers:5);
  let tree = Ensemble.tree_of ensemble 1 in
  List.iter
    (fun path ->
      check_bool (Printf.sprintf "acknowledged %s survives" path) true
        (Ztree.exists tree path <> None))
    !acknowledged

(* {2 Crash hygiene: dedup eviction and inbox flush} *)

let test_close_session_evicts_dedup_entries () =
  (* The exactly-once dedup table is keyed by (session, cxid); entries
     for a closed session can never be hit again, so the applied
     Close_session must reap them on every replica. *)
  let engine, ensemble = make () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      for i = 0 to 4 do
        ignore
          (ok_or_fail "create"
             (s.Zk_client.create (Printf.sprintf "/ev%d" i) ~data:""))
      done;
      check_int "no evictions while the session lives" 0
        (Ensemble.dedup_evictions ensemble);
      s.Zk_client.close ());
  Engine.run engine;
  check_bool "closing the session evicted its dedup entries" true
    (Ensemble.dedup_evictions ensemble > 0);
  check_bool "replicas agree after close" true
    (all_trees_agree ensemble ~servers:3)

let test_crash_flushes_queued_inbox () =
  (* A crash loses RAM, including requests sitting unprocessed in the
     server's inbox. Regression for the inbox flush: without it, the
     restarted server would drain its stale pre-crash queue and writes
     every client had long given up on would materialise in the tree. *)
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun cfg ->
        { (fast_faults cfg) with Ensemble.persist = 0.05 })
      ()
  in
  let writes = 20 in
  let acked = ref 0 and errs = ref 0 in
  let post_restart = ref None in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      for i = 0 to writes - 1 do
        s.Zk_client.multi_async
          [ Zk_client.create_op (Printf.sprintf "/q%d" i) ~data:"" ]
          (function Ok _ -> incr acked | Error _ -> incr errs)
      done);
  (* 50 ms persist: at 10 ms the leader is mid-persist on the head
     write and the rest of the burst is still queued in its inbox *)
  Engine.schedule engine ~delay:0.01 (fun () -> Ensemble.crash ensemble 0);
  Engine.schedule engine ~delay:0.5 (fun () -> Ensemble.restart ensemble 0);
  Process.spawn engine (fun () ->
      Process.sleep 1.0;
      let s = Ensemble.session ensemble ~server:0 () in
      post_restart := Some (s.Zk_client.create "/fresh" ~data:""));
  Engine.run engine;
  check_int "every async callback fired" writes (!acked + !errs);
  check_bool "the crash failed the queued writes" true (!errs >= writes - 1);
  (match !post_restart with
  | Some (Ok _) -> ()
  | Some (Error e) ->
    Alcotest.failf "post-restart write failed: %s" (Zerror.to_string e)
  | None -> Alcotest.fail "post-restart write never ran");
  check_bool "replicas agree after restart" true
    (all_trees_agree ensemble ~servers:3);
  (* Exactly-once across the flush: a queued write either reached the
     replicated log before the crash (and was acknowledged) or it
     vanished with the inbox — never a third, resurrected, outcome. *)
  let tree = Ensemble.tree_of ensemble 1 in
  let present = ref 0 in
  for i = 0 to writes - 1 do
    if Ztree.exists tree (Printf.sprintf "/q%d" i) <> None then incr present
  done;
  check_int "tree holds exactly the acknowledged writes" !acked !present

(* {2 Performance-model sanity (the shapes behind Fig. 7)} *)

let measure_rate ~servers ~write =
  let engine, ensemble = make ~servers () in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      ignore (s.Zk_client.create "/bench" ~data:""));
  Engine.run engine;
  let sessions = Array.init 8 (fun _ -> Ensemble.session ensemble ()) in
  let t0 = ref 0. and t1 = ref 0. in
  let barrier = Simkit.Gate.Barrier.create ~parties:8 () in
  for proc = 0 to 7 do
    Process.spawn engine (fun () ->
        Simkit.Gate.Barrier.await barrier;
        if proc = 0 then t0 := Engine.now engine;
        let s = sessions.(proc) in
        for i = 0 to 99 do
          if write then
            ignore (s.Zk_client.create (Printf.sprintf "/bench/w%d_%d" proc i) ~data:"")
          else ignore (s.Zk_client.get "/bench")
        done;
        Simkit.Gate.Barrier.await barrier;
        if proc = 0 then t1 := Engine.now engine)
  done;
  Engine.run engine;
  800. /. (!t1 -. !t0)

let test_write_throughput_decreases_with_servers () =
  let r1 = measure_rate ~servers:1 ~write:true in
  let r8 = measure_rate ~servers:8 ~write:true in
  check_bool
    (Printf.sprintf "1-server writes (%.0f/s) faster than 8-server (%.0f/s)" r1 r8)
    true (r1 > r8)

let test_read_throughput_increases_with_servers () =
  let r1 = measure_rate ~servers:1 ~write:false in
  let r8 = measure_rate ~servers:8 ~write:false in
  check_bool
    (Printf.sprintf "8-server reads (%.0f/s) faster than 1-server (%.0f/s)" r8 r1)
    true (r8 > 2. *. r1)

let () =
  Alcotest.run "ensemble"
    [ ( "replication",
        [ Alcotest.test_case "write replicates to all" `Quick
            test_write_replicates_to_all;
          Alcotest.test_case "replicas identical after many writes" `Quick
            test_replicas_identical_after_many_writes;
          Alcotest.test_case "total order (Fig. 1 scenario)" `Quick
            test_total_order_observed;
          Alcotest.test_case "session reads own writes" `Quick
            test_session_reads_own_writes;
          Alcotest.test_case "sequential across clients" `Quick
            test_sequential_across_clients;
          Alcotest.test_case "multi atomicity replicated" `Quick
            test_multi_atomicity_replicated;
          Alcotest.test_case "ephemerals removed on close" `Quick
            test_ephemerals_removed_on_close;
          Alcotest.test_case "reads distributed" `Quick
            test_reads_distributed_across_servers;
          Alcotest.test_case "single-server ensemble" `Quick test_single_server_ensemble
        ] );
      ( "faults",
        [ Alcotest.test_case "leader crash and election" `Quick
            test_leader_crash_and_election;
          Alcotest.test_case "follower crash tolerated" `Quick
            test_follower_crash_does_not_block_writes;
          Alcotest.test_case "quorum loss blocks then recovers" `Quick
            test_quorum_loss_blocks_then_recovers;
          Alcotest.test_case "restarted follower catches up" `Quick
            test_restarted_follower_catches_up;
          Alcotest.test_case "no loss across crash+restart" `Quick
            test_writes_during_crash_are_not_lost;
          Alcotest.test_case "retried committed create applies once" `Quick
            test_retried_committed_create_applies_once;
          Alcotest.test_case "watches survive snapshot transfer" `Quick
            test_watches_survive_snapshot_transfer;
          Alcotest.test_case "snapshot catch-up after long outage" `Quick
            test_snapshot_catch_up_after_long_outage;
          Alcotest.test_case "close evicts dedup entries" `Quick
            test_close_session_evicts_dedup_entries;
          Alcotest.test_case "crash flushes queued inbox" `Quick
            test_crash_flushes_queued_inbox ] );
      ( "observers",
        [ Alcotest.test_case "replicate state" `Quick test_observers_replicate_state;
          Alcotest.test_case "serve reads" `Quick test_observers_serve_reads;
          Alcotest.test_case "session reads own writes" `Quick
            test_observer_session_reads_own_writes;
          Alcotest.test_case "cheaper than voters for writes" `Quick
            test_observers_cheaper_than_voters_for_writes;
          Alcotest.test_case "crash harmless" `Quick test_observer_crash_harmless ] );
      ( "group-commit",
        [ Alcotest.test_case "per-txn order and error isolation" `Quick
            test_batch_order_and_error_isolation;
          Alcotest.test_case "max_batch=1 reproduces commit counts" `Quick
            test_max_batch_one_reproduces_commit_counts;
          Alcotest.test_case "batched commits same writes faster" `Quick
            test_batched_commits_same_writes_faster;
          Alcotest.test_case "leader crash mid-batch loses nothing" `Quick
            test_leader_crash_mid_batch_loses_no_committed_write ] );
      ( "async",
        [ Alcotest.test_case "completes with callback" `Quick
            test_async_completes_with_callback;
          Alcotest.test_case "pipelining beats sync" `Quick
            test_async_pipelining_beats_sync;
          Alcotest.test_case "times out without quorum" `Quick
            test_async_times_out_without_quorum ] );
      ( "performance-model",
        [ Alcotest.test_case "writes slow down with ensemble size" `Quick
            test_write_throughput_decreases_with_servers;
          Alcotest.test_case "reads speed up with ensemble size" `Quick
            test_read_throughput_increases_with_servers ] ) ]
