(* Whole-stack integration tests: DUFS clients over the simulated
   ZooKeeper ensemble and filesystem simulators, driven by the mdtest
   harness — checking correctness invariants and the evaluation's
   qualitative shapes at reduced scale. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Vfs = Fuselike.Vfs
module Runner = Mdtest.Runner
module Workload = Mdtest.Workload
module Systems = Scenarios.Systems

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Build a full DUFS stack on a fresh engine; returns (engine, ensemble,
   backends, ops_for_proc). *)
let dufs_stack ?(zk_servers = 3) ?(backends = 2) () =
  let engine = Engine.create () in
  let ensemble = Engine.create |> ignore;
    Zk.Ensemble.start engine (Zk.Ensemble.default_config ~servers:zk_servers)
  in
  let mounts =
    Array.init backends (fun _ ->
        Pfs.Lustre_sim.create engine ~config:(Pfs.Lustre_sim.backend_config ()) ())
  in
  Array.iter
    (fun mount ->
      match
        Dufs.Physical.format Dufs.Physical.default_layout
          (Pfs.Lustre_sim.local_ops mount)
      with
      | Ok () -> ()
      | Error e -> Alcotest.failf "format: %s" (Fuselike.Errno.to_string e))
    mounts;
  let ops_for_proc proc =
    let coord = Zk.Ensemble.session ensemble () in
    let backend_ops =
      Array.mapi
        (fun i mount -> Pfs.Lustre_sim.client mount ~client_id:((proc * backends) + i))
        mounts
    in
    Dufs.Client.ops
      (Dufs.Client.mount ~coord ~backends:backend_ops
         ~client_id:(Int64.of_int (proc + 1))
         ~clock:(fun () -> Engine.now engine)
         ~delay:Process.sleep ())
  in
  (engine, ensemble, mounts, ops_for_proc)

(* {2 mdtest over the full stack} *)

let test_mdtest_run_is_error_free () =
  let engine, _, _, ops_for_proc = dufs_stack () in
  let cfg = Workload.config ~procs:8 ~dirs_per_proc:20 ~files_per_proc:20 () in
  let results = Runner.run engine cfg ~ops_for_proc in
  check_int "no operation failed" 0 results.Runner.errors;
  List.iter
    (fun (phase, rate) ->
      check_bool (Runner.phase_to_string phase ^ " rate positive") true (rate > 0.))
    results.Runner.rates;
  check_int "all six phases measured" 6 (List.length results.Runner.rates)

let test_mdtest_namespace_consistent_after_run () =
  (* after create phases and before removals the namespace must contain
     exactly the expected counts; after the run everything is removed *)
  let engine, ensemble, mounts, ops_for_proc = dufs_stack () in
  let cfg = Workload.config ~procs:4 ~dirs_per_proc:10 ~files_per_proc:10 () in
  let results = Runner.run engine cfg ~ops_for_proc in
  check_int "clean run" 0 results.Runner.errors;
  (* all mdtest files were removed: backends hold no regular files *)
  Array.iter
    (fun mount ->
      let stats = (Pfs.Lustre_sim.local_ops mount).Vfs.statfs () in
      check_int "no leaked physical file" 0 stats.Vfs.files)
    mounts;
  (* the znode namespace retains only the skeleton *)
  let tree = Zk.Ensemble.tree_of ensemble 0 in
  let skeleton_nodes = List.length (Workload.skeleton cfg) in
  (* root of namespace (/dufs) + skeleton + zk root *)
  check_int "znodes = skeleton + roots" (skeleton_nodes + 2) (Zk.Ztree.node_count tree)

let test_replicas_agree_after_mdtest () =
  let engine, ensemble, _, ops_for_proc = dufs_stack ~zk_servers:5 () in
  let cfg = Workload.config ~procs:6 ~dirs_per_proc:15 ~files_per_proc:15 () in
  let results = Runner.run engine cfg ~ops_for_proc in
  check_int "clean run" 0 results.Runner.errors;
  let reference = Zk.Ensemble.tree_of ensemble 0 in
  for i = 1 to 4 do
    check_bool
      (Printf.sprintf "replica %d matches" i)
      true
      (Zk.Ztree.equal_state reference (Zk.Ensemble.tree_of ensemble i))
  done

let test_unique_working_dirs_mode () =
  let engine, _, _, ops_for_proc = dufs_stack () in
  let cfg =
    Workload.config ~procs:4 ~dirs_per_proc:8 ~files_per_proc:8
      ~unique_working_dirs:true ()
  in
  let results = Runner.run engine cfg ~ops_for_proc in
  check_int "clean run in -u mode" 0 results.Runner.errors

let test_latency_percentiles_sane () =
  let engine, _, _, ops_for_proc = dufs_stack () in
  let cfg = Workload.config ~procs:8 ~dirs_per_proc:25 ~files_per_proc:25 () in
  let results = Runner.run engine cfg ~ops_for_proc in
  check_int "six latency rows" 6 (List.length results.Runner.latencies);
  let latency phase =
    match Runner.latency_of results phase with
    | Some l -> l
    | None -> Alcotest.fail (Runner.phase_to_string phase ^ ": no latency row")
  in
  List.iter
    (fun phase ->
      let l = latency phase in
      let name = Runner.phase_to_string phase in
      check_bool (name ^ " samples positive") true (l.Runner.samples > 0);
      check_bool (name ^ " mean positive") true (l.Runner.mean > 0.);
      check_bool (name ^ " p50 <= p95 <= p99") true
        (l.Runner.p50 <= l.Runner.p95 +. 1e-12
        && l.Runner.p95 <= l.Runner.p99 +. 1e-12);
      check_bool (name ^ " p99 <= max (bucket slack)") true
        (l.Runner.p99 <= l.Runner.max *. 1.5 +. 1e-6);
      check_bool (name ^ " latencies are sub-second at this scale") true
        (l.Runner.max < 1.))
    Runner.all_phases;
  (* rough consistency: throughput ~ procs / mean latency *)
  let rate = Runner.rate results Runner.Dir_create in
  let l = latency Runner.Dir_create in
  let expected = 8. /. l.Runner.mean in
  check_bool
    (Printf.sprintf "rate %.0f within 2x of procs/mean %.0f" rate expected)
    true
    (rate > expected /. 2. && rate < expected *. 2.)

let test_workload_paths_deterministic () =
  let cfg = Workload.config ~procs:4 ~dirs_per_proc:5 ~files_per_proc:5 () in
  check_bool "same path for same coordinates" true
    (Workload.dir_path cfg ~proc:2 ~item:3 = Workload.dir_path cfg ~proc:2 ~item:3);
  let all =
    List.concat_map
      (fun proc ->
        List.init cfg.Workload.dirs_per_proc (fun item ->
            Workload.dir_path cfg ~proc ~item))
      [ 0; 1; 2; 3 ]
  in
  check_int "no collisions across procs" (List.length all)
    (List.length (List.sort_uniq compare all));
  check_int "totals" 20 (Workload.total_dirs cfg)

let test_skeleton_shape () =
  let cfg = Workload.config ~procs:2 () in
  let skeleton = Workload.skeleton cfg in
  (* fan-out 10, depth 2: 10 + 100 directories *)
  check_int "skeleton size" 110 (List.length skeleton);
  let leaves = Workload.leaves_for cfg ~proc:0 in
  check_int "100 leaves" 100 (List.length leaves)

(* {2 Evaluation shapes at reduced scale} *)

let mdtest_rate system ~procs phase =
  let results =
    Systems.mdtest ~dirs_per_proc:25 ~files_per_proc:25 system ~procs ()
  in
  check_int
    (Systems.system_label system ^ " run is clean")
    0 results.Runner.errors;
  Runner.rate results phase

let test_dufs_beats_lustre_at_scale () =
  Systems.reset_cache ();
  let dufs = Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Lustre } in
  let dufs_rate = mdtest_rate dufs ~procs:128 Runner.Dir_create in
  let lustre_rate = mdtest_rate Systems.Basic_lustre ~procs:128 Runner.Dir_create in
  check_bool
    (Printf.sprintf "DUFS dir-create (%.0f/s) > Lustre (%.0f/s) at 128 procs" dufs_rate
       lustre_rate)
    true (dufs_rate > lustre_rate)

let test_lustre_beats_dufs_at_small_scale () =
  let dufs = Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Lustre } in
  let dufs_rate = mdtest_rate dufs ~procs:8 Runner.File_create in
  let lustre_rate = mdtest_rate Systems.Basic_lustre ~procs:8 Runner.File_create in
  check_bool
    (Printf.sprintf "Lustre file-create (%.0f/s) > DUFS (%.0f/s) at 8 procs" lustre_rate
       dufs_rate)
    true (lustre_rate > dufs_rate)

let test_dufs_dwarfs_pvfs () =
  let dufs = Systems.Dufs { zk_servers = 8; backends = 2; backend_kind = Systems.Pvfs } in
  let dufs_rate = mdtest_rate dufs ~procs:64 Runner.Dir_create in
  let pvfs_rate = mdtest_rate Systems.Basic_pvfs ~procs:64 Runner.Dir_create in
  check_bool
    (Printf.sprintf "DUFS (%.0f/s) >= 5x PVFS (%.0f/s)" dufs_rate pvfs_rate)
    true
    (dufs_rate > 5. *. pvfs_rate)

let test_more_zk_servers_help_stats_hurt_creates () =
  let dufs n = Systems.Dufs { zk_servers = n; backends = 2; backend_kind = Systems.Lustre } in
  let stat1 = mdtest_rate (dufs 1) ~procs:64 Runner.Dir_stat in
  let stat8 = mdtest_rate (dufs 8) ~procs:64 Runner.Dir_stat in
  let create1 = mdtest_rate (dufs 1) ~procs:64 Runner.Dir_create in
  let create8 = mdtest_rate (dufs 8) ~procs:64 Runner.Dir_create in
  check_bool
    (Printf.sprintf "dir-stat scales with servers (%.0f -> %.0f)" stat1 stat8)
    true (stat8 > 1.5 *. stat1);
  check_bool
    (Printf.sprintf "dir-create pays for replication (%.0f -> %.0f)" create1 create8)
    true (create8 < create1)

let test_more_backends_help_file_stat () =
  let dufs n = Systems.Dufs { zk_servers = 8; backends = n; backend_kind = Systems.Lustre } in
  let stat2 = mdtest_rate (dufs 2) ~procs:128 Runner.File_stat in
  let stat4 = mdtest_rate (dufs 4) ~procs:128 Runner.File_stat in
  check_bool
    (Printf.sprintf "file-stat improves with backends (%.0f -> %.0f)" stat2 stat4)
    true
    (stat4 > 1.3 *. stat2)

(* {2 Fig. 11 data shape} *)

let test_fig11_memory_shapes () =
  let rows = Scenarios.Figures.fig11_data ~millions:[ 0.05; 0.1 ] () in
  match rows with
  | [ (_, zk1, dufs1, fuse1); (_, zk2, dufs2, fuse2) ] ->
    check_bool "zookeeper memory grows linearly" true (zk2 > zk1 +. 10.);
    check_bool "dufs client flat" true (abs_float (dufs2 -. dufs1) < 0.01);
    check_bool "dummy fuse flat" true (abs_float (fuse2 -. fuse1) < 0.01);
    (* slope near the paper's 417 MB per million znodes *)
    let slope_per_million = (zk2 -. zk1) /. 0.05 in
    check_bool
      (Printf.sprintf "slope %.0f MiB/M in [330, 510]" slope_per_million)
      true
      (slope_per_million > 330. && slope_per_million < 510.)
  | _ -> Alcotest.fail "expected two rows"

let () =
  Alcotest.run "integration"
    [ ( "full-stack",
        [ Alcotest.test_case "mdtest run error free" `Quick test_mdtest_run_is_error_free;
          Alcotest.test_case "namespace consistent after run" `Quick
            test_mdtest_namespace_consistent_after_run;
          Alcotest.test_case "replicas agree after mdtest" `Quick
            test_replicas_agree_after_mdtest;
          Alcotest.test_case "unique working dirs mode" `Quick
            test_unique_working_dirs_mode;
          Alcotest.test_case "latency percentiles sane" `Quick
            test_latency_percentiles_sane ] );
      ( "workload",
        [ Alcotest.test_case "paths deterministic" `Quick
            test_workload_paths_deterministic;
          Alcotest.test_case "skeleton shape" `Quick test_skeleton_shape ] );
      ( "evaluation-shapes",
        [ Alcotest.test_case "dufs beats lustre at scale" `Slow
            test_dufs_beats_lustre_at_scale;
          Alcotest.test_case "lustre beats dufs at small scale" `Slow
            test_lustre_beats_dufs_at_small_scale;
          Alcotest.test_case "dufs dwarfs pvfs" `Slow test_dufs_dwarfs_pvfs;
          Alcotest.test_case "zk servers: stats up, creates down" `Slow
            test_more_zk_servers_help_stats_hurt_creates;
          Alcotest.test_case "backends help file stat" `Slow
            test_more_backends_help_file_stat ] );
      ( "memory",
        [ Alcotest.test_case "fig11 shapes" `Quick test_fig11_memory_shapes ] ) ]
