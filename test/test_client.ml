(* Tests for the DUFS client: the paper's algorithms (Figs. 5 and 6),
   POSIX semantics over the coordination service + back-end mounts, the
   FID indirection invariants, and equivalence against a plain in-memory
   filesystem oracle. *)

module Vfs = Fuselike.Vfs
module Errno = Fuselike.Errno
module Inode = Fuselike.Inode
module Memfs = Fuselike.Memfs
module Client = Dufs.Client
module Physical = Dufs.Physical
module Fid = Dufs.Fid

let errno = Alcotest.testable Errno.pp Errno.equal
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Errno.to_string e)

let expect_err label expected = function
  | Ok _ -> Alcotest.failf "%s: expected %s" label (Errno.to_string expected)
  | Error e -> Alcotest.check errno label expected e

(* A DUFS instance in immediate mode: local coordination service and
   [n] in-memory back-ends. *)
let make ?(backends = 2) ?service () =
  let service = match service with Some s -> s | None -> Zk.Zk_local.create () in
  let mounts = Array.init backends (fun _ -> Memfs.create ~clock:(fun () -> 0.) ()) in
  let mount_ops = Array.map Memfs.ops mounts in
  Array.iter
    (fun ops -> ok_or_fail "format" (Physical.format Physical.default_layout ops))
    mount_ops;
  let client =
    Client.mount ~coord:(Zk.Zk_local.session service) ~backends:mount_ops ()
  in
  (client, Client.ops client, service, mount_ops)

(* {2 Directory operations (metadata only, Fig. 5)} *)

let test_mkdir_stat () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o750);
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/d") in
  check_bool "directory" true (Inode.equal_kind attr.Inode.kind Inode.Directory);
  check_int "mode preserved" 0o750 attr.Inode.mode;
  check_int "empty dir size" 0 (Int64.to_int attr.Inode.size)

let test_root_stat () =
  let _, fs, _, _ = make () in
  let attr = ok_or_fail "getattr /" (fs.Vfs.getattr "/") in
  check_bool "root is a dir" true (Inode.equal_kind attr.Inode.kind Inode.Directory)

let test_mkdir_errors () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "exists" Errno.EEXIST (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "no parent" Errno.ENOENT (fs.Vfs.mkdir "/x/y" ~mode:0o755)

let test_dirs_not_on_backends () =
  (* §IV-A: directories are metadata only — never created on back-ends *)
  let _, fs, _, mounts = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/onlymeta" ~mode:0o755);
  Array.iter
    (fun mount -> check_bool "backend untouched" false (Vfs.exists mount "/onlymeta"))
    mounts

let test_rmdir () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "mkdir sub" (fs.Vfs.mkdir "/d/e" ~mode:0o755);
  expect_err "not empty" Errno.ENOTEMPTY (fs.Vfs.rmdir "/d");
  ok_or_fail "rmdir sub" (fs.Vfs.rmdir "/d/e");
  ok_or_fail "rmdir" (fs.Vfs.rmdir "/d");
  expect_err "gone" Errno.ENOENT (fs.Vfs.getattr "/d");
  expect_err "missing" Errno.ENOENT (fs.Vfs.rmdir "/zz");
  expect_err "root" Errno.EINVAL (fs.Vfs.rmdir "/")

let test_rmdir_on_file () =
  let _, fs, _, _ = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "rmdir file" Errno.ENOTDIR (fs.Vfs.rmdir "/f")

let test_dir_stat_size_counts_children () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "c1" (fs.Vfs.mkdir "/d/a" ~mode:0o755);
  ok_or_fail "c2" (fs.Vfs.create "/d/b" ~mode:0o644);
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/d") in
  check_int "two children" 2 (Int64.to_int attr.Inode.size)

(* {2 File operations (FID indirection)} *)

let physical_files mounts =
  Array.fold_left (fun acc m -> acc + (m.Vfs.statfs ()).Vfs.files) 0 mounts

let test_create_places_physical_file () =
  let client, fs, _, mounts = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  check_int "one physical file" 1 (physical_files mounts);
  check_bool "client counted a fid" true (Client.files_created client = 1L)

let test_create_errors () =
  let _, fs, _, _ = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "exists" Errno.EEXIST (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "no parent" Errno.ENOENT (fs.Vfs.create "/no/f" ~mode:0o644)

let test_file_stat_comes_from_backend () =
  let _, fs, _, _ = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o600);
  ignore (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "12345"));
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/f") in
  check_bool "regular" true (Inode.equal_kind attr.Inode.kind Inode.Regular);
  check_int "size from physical file" 5 (Int64.to_int attr.Inode.size);
  check_int "mode from physical file" 0o600 attr.Inode.mode

let test_unlink_removes_physical () =
  let _, fs, _, mounts = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ok_or_fail "unlink" (fs.Vfs.unlink "/f");
  expect_err "gone" Errno.ENOENT (fs.Vfs.getattr "/f");
  check_int "physical file removed" 0 (physical_files mounts)

let test_unlink_errors () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  expect_err "unlink dir" Errno.EISDIR (fs.Vfs.unlink "/d");
  expect_err "unlink missing" Errno.ENOENT (fs.Vfs.unlink "/zz")

let test_read_write_roundtrip () =
  let _, fs, _, _ = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  check_int "write" 11 (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "hello world"));
  check_string "read" "hello world" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:0 ~len:64));
  check_string "offset read" "world" (ok_or_fail "read" (fs.Vfs.read "/f" ~off:6 ~len:5));
  expect_err "read dir" Errno.EISDIR (fs.Vfs.read "/" ~off:0 ~len:1)

let test_truncate_and_chmod_file () =
  let _, fs, _, _ = make () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/f" ~off:0 "123456"));
  ok_or_fail "truncate" (fs.Vfs.truncate "/f" ~size:3L);
  check_int "shrunk" 3
    (Int64.to_int (ok_or_fail "getattr" (fs.Vfs.getattr "/f")).Inode.size);
  ok_or_fail "chmod" (fs.Vfs.chmod "/f" ~mode:0o400);
  check_int "mode" 0o400 (ok_or_fail "getattr" (fs.Vfs.getattr "/f")).Inode.mode

let test_chmod_dir_via_metadata () =
  let _, fs, _, mounts = make () in
  (* the name must not collide with the hash-layout directories ("/0".."/f")
     that formatting pre-creates on the back-ends *)
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/mydir" ~mode:0o755);
  ok_or_fail "chmod" (fs.Vfs.chmod "/mydir" ~mode:0o511);
  check_int "dir mode updated in metadata" 0o511
    (ok_or_fail "getattr" (fs.Vfs.getattr "/mydir")).Inode.mode;
  Array.iter
    (fun m -> check_bool "still not on backend" false (Vfs.exists m "/mydir"))
    mounts

let test_readdir_mixed () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "subdir" (fs.Vfs.mkdir "/d/sub" ~mode:0o755);
  ok_or_fail "file" (fs.Vfs.create "/d/file" ~mode:0o644);
  ok_or_fail "link" (fs.Vfs.symlink ~target:"/d/file" "/d/link");
  let entries = ok_or_fail "readdir" (fs.Vfs.readdir "/d") in
  Alcotest.(check (list (pair string string)))
    "entries sorted with kinds"
    [ ("file", "file"); ("link", "symlink"); ("sub", "dir") ]
    (List.map (fun e -> (e.Vfs.name, Inode.kind_to_string e.Vfs.kind)) entries)

let test_readdir_single_round_trip () =
  (* the acceptance bar for bulk readdir: listing an N-entry directory
     costs exactly one coordination-service round trip, down from N+1 *)
  let engine = Simkit.Engine.create () in
  let ensemble =
    Zk.Ensemble.start engine (Zk.Ensemble.default_config ~servers:3)
  in
  let total_reads () =
    List.fold_left (fun acc id -> acc + Zk.Ensemble.reads_served ensemble id) 0
      [ 0; 1; 2 ]
  in
  Simkit.Process.spawn engine (fun () ->
      let coord = Zk.Ensemble.session ensemble () in
      let mounts =
        Array.init 2 (fun _ -> Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()))
      in
      Array.iter
        (fun ops -> ok_or_fail "format" (Physical.format Physical.default_layout ops))
        mounts;
      let fs = Client.ops (Client.mount ~coord ~backends:mounts ()) in
      ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
      for i = 0 to 9 do
        ok_or_fail "create" (fs.Vfs.create (Printf.sprintf "/d/f%d" i) ~mode:0o644)
      done;
      ok_or_fail "sub" (fs.Vfs.mkdir "/d/sub" ~mode:0o755);
      let before = total_reads () in
      let entries = ok_or_fail "readdir" (fs.Vfs.readdir "/d") in
      check_int "all 11 entries listed" 11 (List.length entries);
      check_int "readdir cost exactly 1 coordination read" 1
        (total_reads () - before));
  Simkit.Engine.run engine

let test_readdir_through_cache_warms_and_invalidates () =
  let service = Zk.Zk_local.create () in
  let cache = Dufs.Cache.wrap (Zk.Zk_local.session service) in
  let mounts =
    Array.init 2 (fun _ -> Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()))
  in
  Array.iter
    (fun ops -> ok_or_fail "format" (Physical.format Physical.default_layout ops))
    mounts;
  let fs =
    Client.ops (Client.mount ~coord:(Dufs.Cache.handle cache) ~backends:mounts ())
  in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "file" (fs.Vfs.create "/d/a" ~mode:0o644);
  ok_or_fail "subdir" (fs.Vfs.mkdir "/d/sub" ~mode:0o755);
  let names entries = List.map (fun e -> e.Vfs.name) entries in
  Alcotest.(check (list string))
    "first listing" [ "a"; "sub" ]
    (names (ok_or_fail "readdir 1" (fs.Vfs.readdir "/d")));
  let misses_after_fill = Dufs.Cache.misses cache in
  Alcotest.(check (list string))
    "repeat listing" [ "a"; "sub" ]
    (names (ok_or_fail "readdir 2" (fs.Vfs.readdir "/d")));
  check_int "repeat listing is a pure cache hit" misses_after_fill
    (Dufs.Cache.misses cache);
  (* the bulk fill warmed each child's data entry: a stat of the listed
     subdirectory is served without another miss *)
  let hits_before = Dufs.Cache.hits cache in
  ignore (ok_or_fail "getattr warmed child" (fs.Vfs.getattr "/d/sub"));
  check_int "warmed stat adds no miss" misses_after_fill (Dufs.Cache.misses cache);
  check_bool "warmed stat is a hit" true (Dufs.Cache.hits cache > hits_before);
  (* own create invalidates the listing *)
  ok_or_fail "new file" (fs.Vfs.create "/d/b" ~mode:0o644);
  Alcotest.(check (list string))
    "listing reflects create" [ "a"; "b"; "sub" ]
    (names (ok_or_fail "readdir 3" (fs.Vfs.readdir "/d")));
  (* own delete invalidates it again *)
  ok_or_fail "unlink" (fs.Vfs.unlink "/d/a");
  Alcotest.(check (list string))
    "listing reflects delete" [ "b"; "sub" ]
    (names (ok_or_fail "readdir 4" (fs.Vfs.readdir "/d")))

let test_rmdir_version_guard_retries () =
  (* a concurrent metadata update lands between rmdir's emptiness check
     and its delete: the version guard turns it into ZBADVERSION and the
     client re-reads and retries instead of deleting stale state *)
  let service = Zk.Zk_local.create () in
  let real = Zk.Zk_local.session service in
  let observed = ref [] in
  let raced = ref false in
  let coord =
    { real with
      Zk.Zk_client.delete =
        (fun ?version path ->
          if Filename.basename path = "d" then begin
            observed := version :: !observed;
            if not !raced then begin
              raced := true;
              (* the interleaved chmod bumps the znode's version *)
              match real.Zk.Zk_client.get path with
              | Ok (data, _) -> ignore (real.Zk.Zk_client.set path ~data)
              | Error e -> Alcotest.failf "race setup: %s" (Zk.Zerror.to_string e)
            end
          end;
          real.Zk.Zk_client.delete ?version path) }
  in
  let mounts =
    Array.init 2 (fun _ -> Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()))
  in
  Array.iter
    (fun ops -> ok_or_fail "format" (Physical.format Physical.default_layout ops))
    mounts;
  let fs = Client.ops (Client.mount ~coord ~backends:mounts ()) in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "rmdir survives the race" (fs.Vfs.rmdir "/d");
  (match List.rev !observed with
  | [ Some v1; Some v2 ] ->
    check_bool "retry re-reads the bumped version" true (v2 = v1 + 1)
  | attempts ->
    Alcotest.failf "expected 2 version-guarded deletes, saw %d with guards [%s]"
      (List.length attempts)
      (String.concat ";"
         (List.map
            (function Some v -> string_of_int v | None -> "unguarded")
            attempts)));
  expect_err "directory is gone" Errno.ENOENT (fs.Vfs.getattr "/d")

let test_cache_not_stale_after_snapshot_transfer () =
  (* regression: a follower recovering by whole-snapshot copy used to
     drop its armed watches, so a client cache attached to it kept
     serving the pre-crash value forever *)
  let engine = Simkit.Engine.create () in
  let cfg =
    { (Zk.Ensemble.default_config ~servers:3) with
      Zk.Ensemble.election_timeout = 0.2;
      request_timeout = 0.3 }
  in
  let ensemble = Zk.Ensemble.start engine cfg in
  let zk_ok label = function
    | Ok v -> v
    | Error e -> Alcotest.failf "%s: unexpected %s" label (Zk.Zerror.to_string e)
  in
  Simkit.Process.spawn engine (fun () ->
      let writer = Zk.Ensemble.session ensemble ~server:0 () in
      ignore (zk_ok "seed" (writer.Zk.Zk_client.create "/hot" ~data:"old"));
      let cache = Dufs.Cache.wrap (Zk.Ensemble.session ensemble ~server:2 ()) in
      let cached = Dufs.Cache.handle cache in
      let data, _ = zk_ok "warm" (cached.Zk.Zk_client.get "/hot") in
      check_string "cache warmed with the pre-crash value" "old" data;
      Zk.Ensemble.crash ensemble 2;
      (* enough writes while the follower is down to force SNAP sync *)
      for i = 0 to 599 do
        ignore
          (zk_ok "bulk"
             (writer.Zk.Zk_client.create (Printf.sprintf "/bulk%03d" i) ~data:""))
      done;
      ignore (zk_ok "update" (writer.Zk.Zk_client.set "/hot" ~data:"new"));
      Zk.Ensemble.restart ensemble 2;
      Simkit.Process.sleep 0.1;
      (* the migrated watch fired the missed change and invalidated the
         entry, so this read refetches instead of serving stale data *)
      let data, _ = zk_ok "re-read" (cached.Zk.Zk_client.get "/hot") in
      check_string "cache serves the post-snapshot value" "new" data;
      check_bool "the stale entry was invalidated, not refreshed by luck" true
        (Dufs.Cache.invalidations cache > 0));
  Simkit.Engine.run engine

let test_symlink () =
  let _, fs, _, _ = make () in
  ok_or_fail "symlink" (fs.Vfs.symlink ~target:"/target/path" "/l");
  check_string "readlink" "/target/path" (ok_or_fail "readlink" (fs.Vfs.readlink "/l"));
  let attr = ok_or_fail "getattr" (fs.Vfs.getattr "/l") in
  check_bool "symlink kind" true (Inode.equal_kind attr.Inode.kind Inode.Symlink);
  ok_or_fail "unlink" (fs.Vfs.unlink "/l");
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "readlink on file" Errno.EINVAL (fs.Vfs.readlink "/f")

let test_access () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir" (fs.Vfs.mkdir "/d" ~mode:0o755);
  ok_or_fail "access dir" (fs.Vfs.access "/d");
  expect_err "access missing" Errno.ENOENT (fs.Vfs.access "/zz")

(* {2 Rename: the flagship metadata-only operation} *)

let test_rename_file_keeps_fid_and_data () =
  let _, fs, _, mounts = make () in
  ok_or_fail "create" (fs.Vfs.create "/a" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/a" ~off:0 "payload"));
  let before = physical_files mounts in
  ok_or_fail "rename" (fs.Vfs.rename "/a" "/b");
  expect_err "old gone" Errno.ENOENT (fs.Vfs.getattr "/a");
  check_string "content follows the FID" "payload"
    (ok_or_fail "read" (fs.Vfs.read "/b" ~off:0 ~len:7));
  check_int "no physical file was created or moved" before (physical_files mounts)

let test_rename_replaces_file () =
  let _, fs, _, _ = make () in
  ok_or_fail "src" (fs.Vfs.create "/src" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/src" ~off:0 "new"));
  ok_or_fail "dst" (fs.Vfs.create "/dst" ~mode:0o644);
  ok_or_fail "rename over" (fs.Vfs.rename "/src" "/dst");
  check_string "replaced" "new" (ok_or_fail "read" (fs.Vfs.read "/dst" ~off:0 ~len:3))

let test_rename_directory_subtree () =
  let _, fs, _, _ = make () in
  ok_or_fail "mk" (fs.Vfs.mkdir "/top" ~mode:0o755);
  ok_or_fail "mk2" (fs.Vfs.mkdir "/top/mid" ~mode:0o755);
  ok_or_fail "deep file" (fs.Vfs.create "/top/mid/leaf" ~mode:0o644);
  ignore (ok_or_fail "write" (fs.Vfs.write "/top/mid/leaf" ~off:0 "deep"));
  ok_or_fail "rename subtree" (fs.Vfs.rename "/top" "/moved");
  expect_err "old root gone" Errno.ENOENT (fs.Vfs.getattr "/top");
  check_string "deep content survives" "deep"
    (ok_or_fail "read" (fs.Vfs.read "/moved/mid/leaf" ~off:0 ~len:4));
  let entries = ok_or_fail "readdir" (fs.Vfs.readdir "/moved") in
  check_int "children intact" 1 (List.length entries)

let test_rename_rules () =
  let _, fs, _, _ = make () in
  ok_or_fail "mkdir a" (fs.Vfs.mkdir "/a" ~mode:0o755);
  ok_or_fail "mkdir a/b" (fs.Vfs.mkdir "/a/b" ~mode:0o755);
  ok_or_fail "mkdir empty" (fs.Vfs.mkdir "/empty" ~mode:0o755);
  ok_or_fail "mkdir full" (fs.Vfs.mkdir "/full" ~mode:0o755);
  ok_or_fail "inner" (fs.Vfs.create "/full/x" ~mode:0o644);
  ok_or_fail "file" (fs.Vfs.create "/f" ~mode:0o644);
  expect_err "into own subtree" Errno.EINVAL (fs.Vfs.rename "/a" "/a/b/c");
  expect_err "dir over nonempty" Errno.ENOTEMPTY (fs.Vfs.rename "/a" "/full");
  expect_err "dir over file" Errno.ENOTDIR (fs.Vfs.rename "/a" "/f");
  expect_err "file over dir" Errno.EISDIR (fs.Vfs.rename "/f" "/empty");
  expect_err "missing src" Errno.ENOENT (fs.Vfs.rename "/nope" "/x");
  expect_err "rename root" Errno.EINVAL (fs.Vfs.rename "/" "/anything");
  ok_or_fail "dir over empty dir" (fs.Vfs.rename "/a" "/empty");
  check_bool "children moved" true (Result.is_ok (fs.Vfs.getattr "/empty/b"));
  ok_or_fail "self rename" (fs.Vfs.rename "/empty" "/empty")

(* {2 Placement invariants} *)

let test_locate_matches_mapping () =
  let client, fs, _, _ = make ~backends:4 () in
  ok_or_fail "create" (fs.Vfs.create "/f" ~mode:0o644);
  let gen = Fid.Gen.create ~client_id:999L in
  let fid = Fid.Gen.next gen in
  check_int "locate = md5 mod n"
    (Dufs.Mapping.md5_mod ~backends:4 fid)
    (Client.locate client fid);
  check_int "backend count" 4 (Client.backend_count client)

let test_files_spread_across_backends () =
  let _, fs, _, mounts = make ~backends:2 () in
  for i = 0 to 199 do
    ok_or_fail "create" (fs.Vfs.create (Printf.sprintf "/f%d" i) ~mode:0o644)
  done;
  let counts = Array.map (fun m -> (m.Vfs.statfs ()).Vfs.files) mounts in
  check_int "all files placed" 200 (counts.(0) + counts.(1));
  check_bool
    (Printf.sprintf "both backends used (%d/%d)" counts.(0) counts.(1))
    true
    (counts.(0) > 50 && counts.(1) > 50)

let test_two_clients_share_namespace () =
  let service = Zk.Zk_local.create () in
  let mounts = Array.init 2 (fun _ -> Memfs.create ~clock:(fun () -> 0.) ()) in
  let mount_ops = Array.map Memfs.ops mounts in
  Array.iter
    (fun ops -> ok_or_fail "format" (Physical.format Physical.default_layout ops))
    mount_ops;
  let c1 =
    Client.mount ~coord:(Zk.Zk_local.session service) ~backends:mount_ops
      ~client_id:1L ()
  in
  let c2 =
    Client.mount ~coord:(Zk.Zk_local.session service) ~backends:mount_ops
      ~client_id:2L ()
  in
  let fs1 = Client.ops c1 and fs2 = Client.ops c2 in
  ok_or_fail "c1 creates" (fs1.Vfs.create "/shared" ~mode:0o644);
  ignore (ok_or_fail "c1 writes" (fs1.Vfs.write "/shared" ~off:0 "from-c1"));
  check_string "c2 reads c1's file" "from-c1"
    (ok_or_fail "c2 read" (fs2.Vfs.read "/shared" ~off:0 ~len:7));
  expect_err "c2 sees the name as taken" Errno.EEXIST
    (fs2.Vfs.create "/shared" ~mode:0o644);
  (* Fig. 1 scenario, serialized through the coordination service:
     c1 mkdir d1, c2 renames d1 -> d2; both clients then agree. *)
  ok_or_fail "c1 mkdir d1" (fs1.Vfs.mkdir "/d1" ~mode:0o755);
  ok_or_fail "c2 renames" (fs2.Vfs.rename "/d1" "/d2");
  expect_err "c1 sees d1 gone" Errno.ENOENT (fs1.Vfs.getattr "/d1");
  check_bool "c1 sees d2" true (Result.is_ok (fs1.Vfs.getattr "/d2"));
  expect_err "second rename fails on both" Errno.ENOENT (fs1.Vfs.rename "/d1" "/d2")

let test_statfs_aggregates_backends () =
  let _, fs, _, _ = make ~backends:3 () in
  for i = 0 to 8 do
    ok_or_fail "create" (fs.Vfs.create (Printf.sprintf "/f%d" i) ~mode:0o644)
  done;
  check_int "files aggregated over 3 backends" 9 (fs.Vfs.statfs ()).Vfs.files

let test_resident_bytes_bounded () =
  let client, fs, _, _ = make () in
  let before = Client.resident_bytes client in
  for i = 0 to 499 do
    ok_or_fail "mkdir" (fs.Vfs.mkdir (Printf.sprintf "/d%d" i) ~mode:0o755)
  done;
  check_int "client memory does not grow with the namespace" before
    (Client.resident_bytes client)

let test_mount_validation () =
  Alcotest.check_raises "no backends" (Invalid_argument "Client.mount: no backends")
    (fun () ->
      ignore
        (Client.mount
           ~coord:(Zk.Zk_local.session (Zk.Zk_local.create ()))
           ~backends:[||] ()))

(* {2 Oracle equivalence: DUFS behaves like a plain POSIX filesystem} *)

type op =
  | Op_mkdir of string
  | Op_create of string
  | Op_unlink of string
  | Op_rmdir of string
  | Op_rename of string * string
  | Op_write of string * string
  | Op_getattr of string
  | Op_readdir of string

let gen_path =
  QCheck2.Gen.(
    map
      (fun comps -> "/" ^ String.concat "/" comps)
      (list_size (int_range 1 3) (oneofl [ "a"; "b"; "c" ])))

let gen_op =
  QCheck2.Gen.(
    oneof
      [ map (fun p -> Op_mkdir p) gen_path;
        map (fun p -> Op_create p) gen_path;
        map (fun p -> Op_unlink p) gen_path;
        map (fun p -> Op_rmdir p) gen_path;
        map (fun (a, b) -> Op_rename (a, b)) (pair gen_path gen_path);
        map (fun (p, s) -> Op_write (p, s)) (pair gen_path (string_size (int_range 0 8)));
        map (fun p -> Op_getattr p) gen_path;
        map (fun p -> Op_readdir p) gen_path ])

let show_op = function
  | Op_mkdir p -> "mkdir " ^ p
  | Op_create p -> "create " ^ p
  | Op_unlink p -> "unlink " ^ p
  | Op_rmdir p -> "rmdir " ^ p
  | Op_rename (x, y) -> "rename " ^ x ^ " " ^ y
  | Op_write (p, _) -> "write " ^ p
  | Op_getattr p -> "getattr " ^ p
  | Op_readdir p -> "readdir " ^ p

let run_op (fs : Vfs.ops) op : string =
  let show_err e = Errno.to_string e in
  match op with
  | Op_mkdir p -> (
    match fs.Vfs.mkdir p ~mode:0o755 with Ok () -> "ok" | Error e -> show_err e)
  | Op_create p -> (
    match fs.Vfs.create p ~mode:0o644 with Ok () -> "ok" | Error e -> show_err e)
  | Op_unlink p -> ( match fs.Vfs.unlink p with Ok () -> "ok" | Error e -> show_err e)
  | Op_rmdir p -> ( match fs.Vfs.rmdir p with Ok () -> "ok" | Error e -> show_err e)
  | Op_rename (a, b) -> (
    match fs.Vfs.rename a b with Ok () -> "ok" | Error e -> show_err e)
  | Op_write (p, s) -> (
    match fs.Vfs.write p ~off:0 s with Ok n -> string_of_int n | Error e -> show_err e)
  | Op_getattr p -> (
    match fs.Vfs.getattr p with
    | Ok attr ->
      Printf.sprintf "%s:%Ld" (Inode.kind_to_string attr.Inode.kind) attr.Inode.size
    | Error e -> show_err e)
  | Op_readdir p -> (
    match fs.Vfs.readdir p with
    | Ok entries ->
      String.concat ","
        (List.map (fun e -> e.Vfs.name ^ "/" ^ Inode.kind_to_string e.Vfs.kind) entries)
    | Error e -> show_err e)

let prop_oracle_equivalence =
  QCheck2.Test.make
    ~name:"DUFS over zk+2 backends behaves like one plain POSIX filesystem" ~count:250
    QCheck2.Gen.(list_size (int_range 1 50) gen_op)
    (fun ops_list ->
      let _, dufs, _, _ = make () in
      let oracle = Memfs.ops (Memfs.create ~clock:(fun () -> 0.) ()) in
      List.for_all
        (fun op ->
          let a = run_op dufs op and b = run_op oracle op in
          if a <> b then
            QCheck2.Test.fail_reportf "divergence on %s: dufs=%s oracle=%s" (show_op op)
              a b
          else true)
        ops_list)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "dufs-client"
    [ ( "directories",
        [ Alcotest.test_case "mkdir + stat" `Quick test_mkdir_stat;
          Alcotest.test_case "root stat" `Quick test_root_stat;
          Alcotest.test_case "mkdir errors" `Quick test_mkdir_errors;
          Alcotest.test_case "dirs never touch backends" `Quick
            test_dirs_not_on_backends;
          Alcotest.test_case "rmdir" `Quick test_rmdir;
          Alcotest.test_case "rmdir on file" `Quick test_rmdir_on_file;
          Alcotest.test_case "rmdir version guard retries" `Quick
            test_rmdir_version_guard_retries;
          Alcotest.test_case "dir size counts children" `Quick
            test_dir_stat_size_counts_children ] );
      ( "files",
        [ Alcotest.test_case "create places physical file" `Quick
            test_create_places_physical_file;
          Alcotest.test_case "create errors" `Quick test_create_errors;
          Alcotest.test_case "file stat from backend" `Quick
            test_file_stat_comes_from_backend;
          Alcotest.test_case "unlink removes physical" `Quick
            test_unlink_removes_physical;
          Alcotest.test_case "unlink errors" `Quick test_unlink_errors;
          Alcotest.test_case "read/write" `Quick test_read_write_roundtrip;
          Alcotest.test_case "truncate + chmod file" `Quick test_truncate_and_chmod_file;
          Alcotest.test_case "chmod dir in metadata" `Quick test_chmod_dir_via_metadata;
          Alcotest.test_case "readdir mixed kinds" `Quick test_readdir_mixed;
          Alcotest.test_case "readdir: 1 round trip" `Quick
            test_readdir_single_round_trip;
          Alcotest.test_case "readdir through cache" `Quick
            test_readdir_through_cache_warms_and_invalidates;
          Alcotest.test_case "cache fresh after snapshot transfer" `Quick
            test_cache_not_stale_after_snapshot_transfer;
          Alcotest.test_case "symlink" `Quick test_symlink;
          Alcotest.test_case "access" `Quick test_access ] );
      ( "rename",
        [ Alcotest.test_case "file keeps fid and data" `Quick
            test_rename_file_keeps_fid_and_data;
          Alcotest.test_case "replaces file" `Quick test_rename_replaces_file;
          Alcotest.test_case "directory subtree" `Quick test_rename_directory_subtree;
          Alcotest.test_case "POSIX rules" `Quick test_rename_rules ] );
      ( "placement",
        [ Alcotest.test_case "locate matches mapping" `Quick test_locate_matches_mapping;
          Alcotest.test_case "files spread across backends" `Quick
            test_files_spread_across_backends;
          Alcotest.test_case "two clients share namespace (Fig. 1)" `Quick
            test_two_clients_share_namespace;
          Alcotest.test_case "statfs aggregates" `Quick test_statfs_aggregates_backends;
          Alcotest.test_case "client memory bounded" `Quick test_resident_bytes_bounded;
          Alcotest.test_case "mount validation" `Quick test_mount_validation ] );
      ("oracle", [ qc prop_oracle_equivalence ]) ]
