(* Tests for the stable-storage model (Zk.Wal) and crash-consistent
   ensemble recovery built on it: power-off keeps exactly what the
   device finished (the in-flight record torn), recovery truncates at
   the first bad checksum, corrupt snapshots fall back down the ladder,
   and — the two regression scenarios this PR exists for — a crash must
   drop a pipelined leader's un-fsynced suffix, and a whole-cluster
   power failure must be survivable from local disks alone. *)

module Engine = Simkit.Engine
module Process = Simkit.Process
module Ensemble = Zk.Ensemble
module Wal = Zk.Wal
module Txn = Zk.Txn
module Ztree = Zk.Ztree
module Zerror = Zk.Zerror
module Zk_client = Zk.Zk_client

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let ok_or_fail label = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: unexpected %s" label (Zerror.to_string e)

let make ?(servers = 3) ?(config_adjust = Fun.id) () =
  let engine = Engine.create () in
  let cfg = config_adjust (Ensemble.default_config ~servers) in
  (engine, Ensemble.start engine cfg)

(* {2 The log model alone} *)

let entry z =
  { Wal.e_zxid = z;
    e_txn =
      [ Txn.Create
          { path = Printf.sprintf "/n%Ld" z; data = Printf.sprintf "d%Ld" z;
            ephemeral_owner = 0L; sequential = false } ];
    e_time = 0.;
    e_rsession = 1L;
    e_rcxid = z;
    e_close = None }

let replay_zxids r = List.map (fun e -> e.Wal.e_zxid) r.Wal.rc_replay

let test_power_off_drops_unfsynced_tail () =
  let w = Wal.create () in
  (* four appends: two fsynced by t=0.3, one mid-write (torn), one still
     queued behind it (dropped outright) *)
  Wal.append w ~epoch:1 ~start:0.00 ~done_at:0.10 (entry 1L);
  Wal.append w ~epoch:1 ~start:0.10 ~done_at:0.20 (entry 2L);
  Wal.append w ~epoch:1 ~start:0.25 ~done_at:0.35 (entry 3L);
  Wal.append w ~epoch:1 ~start:0.32 ~done_at:0.45 (entry 4L);
  Wal.note_commit w 2L;
  check_bool "durable zxid before the cut" true (Wal.durable_zxid w ~now:0.3 = 2L);
  Wal.power_off w ~now:0.3;
  check_int "queued append dropped outright" 1 (Wal.tail_dropped w);
  let r = Wal.recover w in
  check_int "torn in-flight record truncated" 1 r.Wal.rc_truncated;
  check_bool "replay is the committed fsynced prefix" true
    (replay_zxids r = [ 1L; 2L ]);
  check_bool "no uncommitted tail survives the tear" true (r.Wal.rc_tail = []);
  check_bool "log end is the durable prefix" true (snd r.Wal.rc_log_end = 2L)

let test_truncate_at_first_bad_checksum () =
  let w = Wal.create () in
  for i = 1 to 20 do
    let t = float_of_int i *. 0.01 in
    Wal.append w ~epoch:1 ~start:t ~done_at:(t +. 0.005) (entry (Int64.of_int i))
  done;
  Wal.note_commit w 20L;
  let rotted = Wal.corrupt w ~fraction:0.5 in
  check_bool "bit-rot hit at least one record" true (rotted >= 1);
  let r = Wal.recover w in
  check_int "every record is replayed or truncated" 20
    (r.Wal.rc_replayed + List.length r.Wal.rc_tail + r.Wal.rc_truncated);
  (* truncate-at-first-bad: what survives is a contiguous prefix *)
  check_bool "replay is a contiguous prefix from zxid 1" true
    (replay_zxids r
     = List.init r.Wal.rc_replayed (fun i -> Int64.of_int (i + 1)));
  check_bool "nothing past the first bad checksum survives" true
    (r.Wal.rc_replayed < 20 && r.Wal.rc_truncated >= 1)

let test_full_rot_is_a_cold_start () =
  let w = Wal.create () in
  for i = 1 to 10 do
    Wal.append w ~epoch:1 ~start:0. ~done_at:0. (entry (Int64.of_int i))
  done;
  Wal.note_commit w 10L;
  check_int "every record rots at fraction 1" 10 (Wal.corrupt w ~fraction:1.);
  let r = Wal.recover w in
  check_int "nothing replayable" 0 r.Wal.rc_replayed;
  check_int "whole log truncated" 10 r.Wal.rc_truncated;
  check_bool "no snapshot to stand on" true (r.Wal.rc_snapshot = None)

let test_snapshot_fallback_ladder () =
  let w = Wal.create () in
  for i = 1 to 10 do
    Wal.append w ~epoch:1 ~start:0. ~done_at:0. (entry (Int64.of_int i))
  done;
  Wal.note_commit w 10L;
  Wal.snapshot w ~zxid:5L ~epoch:1 "tree-at-5";
  Wal.snapshot w ~zxid:8L ~epoch:1 "tree-at-8";
  check_int "log pruned below the older snapshot" 5 (Wal.records w);
  check_bool "newest snapshot corrupted" true (Wal.corrupt_snapshot w);
  let r = Wal.recover w in
  check_bool "fell back to the older snapshot" true r.Wal.rc_snap_fallback;
  check_bool "older snapshot loaded" true (r.Wal.rc_snapshot = Some "tree-at-5");
  check_bool "snapshot zxid is the fallback's" true (r.Wal.rc_snap_zxid = 5L);
  check_bool "replay covers (5, 10] from the surviving log" true
    (replay_zxids r = [ 6L; 7L; 8L; 9L; 10L ]);
  check_int "fallback counted" 1 (Wal.snap_fallbacks w)

let test_double_recover_is_idempotent () =
  let w = Wal.create () in
  for i = 1 to 12 do
    Wal.append w ~epoch:1 ~start:0. ~done_at:0. (entry (Int64.of_int i))
  done;
  Wal.note_commit w 12L;
  ignore (Wal.corrupt w ~fraction:0.5);
  let r1 = Wal.recover w in
  let r2 = Wal.recover w in
  check_int "second recovery truncates nothing new" 0 r2.Wal.rc_truncated;
  check_bool "same replay both times" true
    (replay_zxids r1 = replay_zxids r2);
  check_bool "same log end both times" true (r1.Wal.rc_log_end = r2.Wal.rc_log_end)

let test_zxid_rewind_is_trunc () =
  (* an epoch-2 record re-proposing zxid 4 overwrites epoch 1's
     uncommitted 4..5 suffix — recovery must pop the stale tail *)
  let w = Wal.create () in
  for i = 1 to 5 do
    Wal.append w ~epoch:1 ~start:0. ~done_at:0. (entry (Int64.of_int i))
  done;
  Wal.append w ~epoch:2 ~start:0. ~done_at:0. (entry 4L);
  Wal.note_commit w 4L;
  Wal.note_epoch w 2;
  let r = Wal.recover w in
  check_bool "replay ends at the epoch-2 rewrite" true
    (replay_zxids r = [ 1L; 2L; 3L; 4L ]);
  check_bool "log end reflects the new epoch" true (r.Wal.rc_log_end = (2, 4L));
  check_bool "the re-proposed record wins its zxid" true
    (Wal.epoch_at w 4L = Some 2)

(* {2 Regression: crash must drop the un-persisted suffix}

   The pipelined leader acks a proposal once a quorum is in — and two
   followers are a quorum of three, so a write can commit (and the
   client be told Ok) while the leader's own append still sits in a
   stalled WAL device. Before this PR, [crash] kept the dead server's
   RAM as its recovered state, silently including that suffix; now the
   crash answers with the disk's truth, and the acked write survives
   where it was actually persisted: on the followers. *)

let test_crash_drops_unpersisted_suffix () =
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun c ->
        { c with Ensemble.max_inflight_batches = 4; election_timeout = 0.1 })
      ()
  in
  let members = [ 0; 1; 2 ] in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:1 () in
      ignore (ok_or_fail "warmup" (s.Zk_client.create "/pre" ~data:"p"));
      Process.sleep 0.05;
      let lid = Option.get (Ensemble.leader_id ensemble) in
      Ensemble.disk_stall ensemble lid ~duration:10.;
      ignore
        (ok_or_fail "acked via the follower quorum"
           (s.Zk_client.create "/w" ~data:"W"));
      check_bool "leader's durable zxid lags a follower's" true
        (Ensemble.durable_zxid ensemble lid
         < Ensemble.durable_zxid ensemble ((lid + 1) mod 3));
      List.iter (Ensemble.crash ensemble) members;
      Process.sleep 0.1;
      (* power returns to the old leader first: alone it has no quorum,
         so it parks on its locally recovered state — which must hold
         the fsynced prefix but NOT the never-persisted /w *)
      Ensemble.restart ensemble lid;
      Process.sleep 0.1;
      let t = Ensemble.tree_of ensemble lid in
      (match Ztree.get t "/pre" with
       | Ok (d, _) -> check_string "fsynced prefix recovered" "p" d
       | Error e -> Alcotest.failf "/pre lost: %s" (Zerror.to_string e));
      (match Ztree.get t "/w" with
       | Error _ -> ()
       | Ok _ ->
         Alcotest.fail "crash kept an un-fsynced suffix (RAM, not disk)");
      (* the followers come back: the recovery election compares durable
         log ends, a follower's longer log wins, and /w is restored
         everywhere — including onto the old leader *)
      List.iter
        (fun id -> if id <> lid then Ensemble.restart ensemble id)
        members);
  Engine.run engine;
  check_bool "a leader was re-elected" true (Ensemble.leader_id ensemble <> None);
  List.iter
    (fun id ->
      let d, _ =
        ok_or_fail
          (Printf.sprintf "server %d" id)
          (Ztree.get (Ensemble.tree_of ensemble id) "/w")
      in
      check_string (Printf.sprintf "server %d holds the acked write" id) "W" d)
    members

(* {2 Regression: whole-cluster power failure is survivable} *)

let test_whole_cluster_power_failure () =
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun c -> { c with Ensemble.election_timeout = 0.1 })
      ()
  in
  let post = ref None in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble () in
      for i = 0 to 9 do
        ignore
          (ok_or_fail "pre-outage write"
             (s.Zk_client.create (Printf.sprintf "/a%d" i) ~data:"v"))
      done;
      Process.sleep 0.05;
      List.iter (Ensemble.crash ensemble) [ 0; 1; 2 ];
      Process.sleep 0.5;
      (* the first riser parks (1 < quorum 2); the second completes the
         quorum and triggers the recovery election; the third joins *)
      Ensemble.restart ensemble 0;
      Process.sleep 0.05;
      check_bool "sub-quorum riser stays leaderless" true
        (Ensemble.leader_id ensemble = None);
      Ensemble.restart ensemble 1;
      Ensemble.restart ensemble 2;
      Process.sleep 0.2;
      let s2 = Ensemble.session ensemble () in
      post := Some (s2.Zk_client.create "/post" ~data:"alive"));
  Engine.run engine;
  (match !post with
   | Some (Ok _) -> ()
   | Some (Error e) ->
     Alcotest.failf "write after full recovery: %s" (Zerror.to_string e)
   | None -> Alcotest.fail "post-recovery write never ran");
  check_bool "a leader exists after total outage" true
    (Ensemble.leader_id ensemble <> None);
  check_int "three local recoveries ran" 3 (Ensemble.recoveries ensemble);
  List.iter
    (fun id ->
      let t = Ensemble.tree_of ensemble id in
      for i = 0 to 9 do
        ignore
          (ok_or_fail
             (Printf.sprintf "server %d /a%d" id i)
             (Ztree.get t (Printf.sprintf "/a%d" i)))
      done)
    [ 0; 1; 2 ];
  check_bool "replicas agree after recovery" true
    (Ztree.equal_state (Ensemble.tree_of ensemble 0) (Ensemble.tree_of ensemble 1)
     && Ztree.equal_state (Ensemble.tree_of ensemble 0)
          (Ensemble.tree_of ensemble 2))

(* {2 Recovery ladder, end to end on a member} *)

let test_snapshot_corruption_falls_back_then_converges () =
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun c ->
        { c with Ensemble.snapshot_every = 8; election_timeout = 0.1 })
      ()
  in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      for i = 0 to 29 do
        ignore
          (ok_or_fail "write" (s.Zk_client.create (Printf.sprintf "/s%d" i) ~data:"x"))
      done;
      Process.sleep 0.05;
      check_bool "follower has two snapshots" true
        (Ensemble.wal_snapshots ensemble 2 = 2);
      Ensemble.corrupt_snapshot ensemble 2;
      Ensemble.crash ensemble 2;
      Process.sleep 0.1;
      Ensemble.restart ensemble 2);
  Engine.run engine;
  check_bool "newest snapshot was skipped for the older one" true
    (Ensemble.snap_fallbacks ensemble >= 1);
  check_bool "replica converges despite the rotten snapshot" true
    (Ztree.equal_state (Ensemble.tree_of ensemble 2) (Ensemble.tree_of ensemble 0))

let test_rotten_log_resyncs_from_leader () =
  (* the whole disk is bad: every WAL record rots and there are no
     snapshots — local recovery comes up empty and the live leader must
     supply everything by state transfer *)
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun c ->
        { c with Ensemble.snapshot_every = 0; election_timeout = 0.1 })
      ()
  in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      for i = 0 to 19 do
        ignore
          (ok_or_fail "write" (s.Zk_client.create (Printf.sprintf "/r%d" i) ~data:"x"))
      done;
      Process.sleep 0.05;
      Ensemble.corrupt_wal ensemble 2 ~fraction:1.;
      Ensemble.crash ensemble 2;
      Process.sleep 0.1;
      Ensemble.restart ensemble 2);
  Engine.run engine;
  check_bool "the whole log was truncated" true
    (Ensemble.wal_truncated ensemble >= 20);
  check_bool "leader transfer filled the hole" true
    (Ensemble.transfer_diff_txns ensemble > 0
     || Ensemble.transfer_snaps ensemble > 0);
  check_bool "replica converges from the transfer" true
    (Ztree.equal_state (Ensemble.tree_of ensemble 2) (Ensemble.tree_of ensemble 0))

let test_double_restart_is_idempotent () =
  let engine, ensemble =
    make ~servers:3
      ~config_adjust:(fun c -> { c with Ensemble.election_timeout = 0.1 })
      ()
  in
  Process.spawn engine (fun () ->
      let s = Ensemble.session ensemble ~server:0 () in
      for i = 0 to 14 do
        ignore
          (ok_or_fail "write" (s.Zk_client.create (Printf.sprintf "/i%d" i) ~data:"x"))
      done;
      Process.sleep 0.05;
      Ensemble.crash ensemble 2;
      Process.sleep 0.1;
      Ensemble.restart ensemble 2;
      Process.sleep 0.1;
      Ensemble.crash ensemble 2;
      Process.sleep 0.1;
      Ensemble.restart ensemble 2);
  Engine.run engine;
  check_int "both restarts recovered" 2 (Ensemble.recoveries ensemble);
  check_int "recovery invents no nodes" 16
    (Ztree.node_count (Ensemble.tree_of ensemble 2));
  check_bool "replica state is a fixed point of recovery" true
    (Ztree.equal_state (Ensemble.tree_of ensemble 2) (Ensemble.tree_of ensemble 0))

let () =
  Alcotest.run "wal"
    [ ( "log-model",
        [ Alcotest.test_case "power-off drops the un-fsynced tail" `Quick
            test_power_off_drops_unfsynced_tail;
          Alcotest.test_case "truncate at the first bad checksum" `Quick
            test_truncate_at_first_bad_checksum;
          Alcotest.test_case "full rot is a cold start" `Quick
            test_full_rot_is_a_cold_start;
          Alcotest.test_case "snapshot fallback ladder" `Quick
            test_snapshot_fallback_ladder;
          Alcotest.test_case "double recovery is idempotent" `Quick
            test_double_recover_is_idempotent;
          Alcotest.test_case "zxid rewind pops the stale suffix" `Quick
            test_zxid_rewind_is_trunc ] );
      ( "recovery",
        [ Alcotest.test_case "crash drops the un-persisted suffix" `Quick
            test_crash_drops_unpersisted_suffix;
          Alcotest.test_case "whole-cluster power failure survivable" `Quick
            test_whole_cluster_power_failure;
          Alcotest.test_case "corrupt snapshot falls back and converges" `Quick
            test_snapshot_corruption_falls_back_then_converges;
          Alcotest.test_case "rotten log resyncs from the leader" `Quick
            test_rotten_log_resyncs_from_leader;
          Alcotest.test_case "double restart is idempotent" `Quick
            test_double_restart_is_idempotent ] ) ]
