(* The full benchmark harness: regenerates every table and figure of the
   paper's evaluation (§V) on the discrete-event simulator, then runs one
   Bechamel microbenchmark per figure measuring the primitive that
   dominates it.

       dune exec bench/main.exe

   Individual experiments: `dune exec bin/dufs_bench.exe -- <id>`. *)

let hr () = print_endline (String.make 78 '=')

(* {2 Bechamel microbenches — one Test.make per table/figure} *)

let microbench_tests () =
  let open Bechamel in
  (* Fig. 7's primitive: applying a create+delete txn pair to the znode
     state machine (what every replica does per committed write). *)
  let ztree_txn =
    let tree = Zk.Ztree.create () in
    let zxid = ref 0L in
    Test.make ~name:"fig7: ztree create+delete txn"
      (Staged.stage (fun () ->
           zxid := Int64.add !zxid 1L;
           ignore
             (Zk.Ztree.apply tree ~zxid:!zxid ~time:0.
                [ Zk.Txn.Create
                    { path = "/bench"; data = "x"; ephemeral_owner = 0L;
                      sequential = false } ]);
           zxid := Int64.add !zxid 1L;
           ignore
             (Zk.Ztree.apply tree ~zxid:!zxid ~time:0.
                [ Zk.Txn.Delete { path = "/bench"; expected_version = -1 } ])))
  in
  (* Fig. 8's primitive: a full DUFS directory create+remove through the
     metadata path (coordination service, no network). *)
  let dufs_dir_cycle =
    let service = Zk.Zk_local.create () in
    let backend = Fuselike.Memfs.ops (Fuselike.Memfs.create ~clock:(fun () -> 0.) ()) in
    (match Dufs.Physical.format Dufs.Physical.default_layout backend with
    | Ok () -> ()
    | Error e -> failwith (Fuselike.Errno.to_string e));
    let fs =
      Dufs.Client.ops
        (Dufs.Client.mount ~coord:(Zk.Zk_local.session service) ~backends:[| backend |]
           ())
    in
    Test.make ~name:"fig8: dufs mkdir+rmdir (metadata path)"
      (Staged.stage (fun () ->
           ignore (fs.Fuselike.Vfs.mkdir "/bench" ~mode:0o755);
           ignore (fs.Fuselike.Vfs.rmdir "/bench")))
  in
  (* Fig. 9's primitive: the deterministic mapping — MD5 mod N plus
     physical-path derivation for a fresh FID. *)
  let mapping =
    let gen = Dufs.Fid.Gen.create ~client_id:1L in
    Test.make ~name:"fig9: fid -> backend + physical path"
      (Staged.stage (fun () ->
           let fid = Dufs.Fid.Gen.next gen in
           ignore (Dufs.Mapping.md5_mod ~backends:4 fid);
           ignore (Dufs.Physical.path Dufs.Physical.default_layout fid)))
  in
  (* Fig. 10's substrate primitive: a namespace create+unlink on the
     in-memory filesystem behind the Lustre/PVFS2 simulators. *)
  let memfs_cycle =
    let fs = Fuselike.Memfs.ops (Fuselike.Memfs.create ~clock:(fun () -> 0.) ()) in
    Test.make ~name:"fig10: backend namespace create+unlink"
      (Staged.stage (fun () ->
           ignore (fs.Fuselike.Vfs.create "/bench" ~mode:0o644);
           ignore (fs.Fuselike.Vfs.unlink "/bench")))
  in
  (* Fig. 11's primitive: znode creation in an already-large tree (memory
     accounting + hash insert). *)
  let ztree_grow =
    let tree = Zk.Ztree.create () in
    let zxid = ref 0L in
    let bump () =
      zxid := Int64.add !zxid 1L;
      !zxid
    in
    let create path =
      ignore
        (Zk.Ztree.apply tree ~zxid:(bump ()) ~time:0.
           [ Zk.Txn.Create { path; data = ""; ephemeral_owner = 0L; sequential = false } ])
    in
    create "/m";
    for i = 0 to 99_999 do
      create (Printf.sprintf "/m/pre%06d" i)
    done;
    let n = ref 0 in
    Test.make ~name:"fig11: znode create in 100k-node tree"
      (Staged.stage (fun () ->
           incr n;
           create (Printf.sprintf "/m/bench%09d" !n)))
  in
  (* Headline's primitive: MD5 of a FID-sized message. *)
  let md5 =
    let bytes = Dufs.Fid.to_bytes (Dufs.Fid.make ~client_id:7L ~counter:9L) in
    Test.make ~name:"headline: md5 of a 16-byte fid"
      (Staged.stage (fun () -> ignore (Dufs.Md5.digest bytes)))
  in
  (* The simulator substrate: schedule+dispatch one event. *)
  let engine_event =
    let engine = Simkit.Engine.create () in
    Test.make ~name:"substrate: engine schedule+dispatch"
      (Staged.stage (fun () ->
           Simkit.Engine.schedule engine ~delay:0. ignore;
           Simkit.Engine.run engine))
  in
  [ ztree_txn; dufs_dir_cycle; mapping; memfs_cycle; ztree_grow; md5; engine_event ]

let run_microbenches () =
  let open Bechamel in
  hr ();
  print_endline "Bechamel microbenchmarks (one per figure: its dominant primitive)";
  hr ();
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  (* measure each test separately so one noisy run cannot skew another *)
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"" [ test ]) in
      let analyzed = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ ns_per_run ] ->
            Printf.printf "  %-48s %12.1f ns/op %14.0f ops/s\n" name ns_per_run
              (1e9 /. ns_per_run)
          | Some _ | None -> Printf.printf "  %-48s (no estimate)\n" name)
        analyzed)
    (microbench_tests ());
  flush stdout

let () =
  hr ();
  print_endline "DUFS benchmark harness — regenerating every figure of CLUSTER'11 §V";
  print_endline "(shapes and ratios are the reproduction target; see EXPERIMENTS.md)";
  hr ();
  Scenarios.Figures.all ();
  (* re-emits the group-commit comparison as BENCH_pr1.json; the mdtest
     runs are memoized, so this only pays for the JSON *)
  Scenarios.Figures.batching ~json_path:"BENCH_pr1.json" ();
  run_microbenches ();
  hr ();
  print_endline "bench complete."
